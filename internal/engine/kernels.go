package engine

import (
	"fmt"
	"math/bits"

	"mto/internal/bitmap"
	"mto/internal/block"
	"mto/internal/predicate"
	"mto/internal/relation"
	"mto/internal/value"
	"mto/internal/workload"
)

// This file is the vectorized execution path behind Execute. It makes the
// same staging decisions as ExecuteReference — layout routing, zone-map
// skipping, diPs, runtime block pruning, semantic reduction — but sweeps
// whole columns and key sets per step instead of walking rows through
// per-row closures:
//
//   - filter evaluation compiles to one dense bit mask per (alias, table)
//     via predicate.FillMask, ANDed with the bitset of rows present in the
//     candidate blocks;
//   - join keys live as dictionary-code sets (relation.ColumnDict, cached
//     on the Engine like the secondary-index state), so semantic reduction
//     probes int32 codes instead of boxed value.Value map keys, and skips
//     re-reducing a side whose inputs are provably unchanged;
//   - zone-map pruning compiles each filter's range evaluator once
//     (predicate.CompileRanges) and sweeps all candidate blocks in one
//     pass.
//
// Every decision is pinned to the scalar path by identity tests asserting
// byte-identical Results across whole workloads.

// vecAlias tracks one table reference in the vectorized path: surviving
// rows live in a dense bitset over the base table, and join-key sets
// derived from them are cached per column, invalidated by a version
// counter that bumps whenever the row set shrinks.
type vecAlias struct {
	alias   string
	table   string
	filter  predicate.Predicate
	set     bitmap.Dense
	setBuf  *denseBuf // pooled backing of set, released after the query
	count   int
	version int
	keys    map[string]*cachedKeys
}

// cachedKeys is a snapshot of one alias's distinct non-null join keys in
// one column, in up to three interchangeable representations built
// lazily: dictionary codes (for coded membership probes), sorted raw ints
// (for zone-interval probes), and boxed values (for secondary-index
// lookups and non-encodable columns).
type cachedKeys struct {
	version int
	dict    *relation.ColumnDict // nil for non-encodable columns
	coded   bitmap.Dense         // set of dict codes; nil when dict is nil
	boxed   map[value.Value]struct{}
	ints    []int64       // sorted ascending; int dicts only
	vals    []value.Value // sorted ascending, single kind
}

// keysFor returns a's key snapshot for col, reusing the cached one while
// a's row set is unchanged ("dirty alias" tracking: a clean version means
// the expensive extraction can be skipped entirely).
func (e *Engine) keysFor(a *vecAlias, tbl *relation.Table, col string) *cachedKeys {
	if ck, ok := a.keys[col]; ok && ck.version == a.version {
		return ck
	}
	ck := &cachedKeys{version: a.version, dict: e.dictFor(a.table, col)}
	if ck.dict != nil {
		codes := ck.dict.Codes
		ck.coded = bitmap.NewDense(ck.dict.NumCodes())
		a.set.ForEach(func(r int) {
			if c := codes[r]; c >= 0 {
				ck.coded.Set(int(c))
			}
		})
	} else {
		// Non-encodable column (float keys, or a column this table does
		// not have): fall back to boxing the values directly.
		ck.boxed = map[value.Value]struct{}{}
		if ci, ok := tbl.Schema().ColumnIndex(col); ok {
			a.set.ForEach(func(r int) {
				if v := tbl.Value(r, ci); !v.IsNull() {
					ck.boxed[v] = struct{}{}
				}
			})
		}
	}
	a.keys[col] = ck
	return ck
}

// boxedKeys returns the keys as a value set (the scalar keysOf shape).
func (ck *cachedKeys) boxedKeys() map[value.Value]struct{} {
	if ck.boxed == nil {
		ck.boxed = make(map[value.Value]struct{}, ck.coded.Count())
		ck.coded.ForEach(func(c int) { ck.boxed[ck.dict.Value(int32(c))] = struct{}{} })
	}
	return ck.boxed
}

// intKeys returns the sorted raw int keys; ok is false for non-int key
// sets.
func (ck *cachedKeys) intKeys() (keys []int64, ok bool) {
	if ck.dict == nil || ck.dict.Kind != value.KindInt {
		return nil, false
	}
	if ck.ints == nil {
		ck.ints = make([]int64, 0, ck.coded.Count())
		ck.coded.ForEach(func(c int) { ck.ints = append(ck.ints, ck.dict.Ints[c]) })
	}
	return ck.ints, true
}

// valueKeys returns the keys as a sorted boxed slice (the sortedKeys
// shape). Dictionary codes are ranks, so ascending code order is already
// ascending value order.
func (ck *cachedKeys) valueKeys() []value.Value {
	if ck.vals == nil {
		if ck.dict != nil {
			ck.vals = make([]value.Value, 0, ck.coded.Count())
			ck.coded.ForEach(func(c int) { ck.vals = append(ck.vals, ck.dict.Value(int32(c))) })
		} else {
			ck.vals = sortedKeys(ck.boxed)
		}
	}
	return ck.vals
}

// dictFor returns the cached dictionary encoding of table.col, nil when
// the column cannot be encoded (float or missing). Failures are cached
// too, so unencodable columns are not retried on every query.
func (e *Engine) dictFor(table, col string) *relation.ColumnDict {
	cacheKey := table + "." + col
	e.mu.Lock()
	defer e.mu.Unlock()
	if d, ok := e.dicts[cacheKey]; ok {
		return d
	}
	d, err := relation.BuildColumnDict(e.ds.Table(table), col)
	if err != nil {
		d = nil
	}
	e.dicts[cacheKey] = d
	return d
}

// xlateFor returns the cached code translation from the target column's
// dictionary into the source column's, so target rows can probe source
// key sets without boxing a single value.
func (e *Engine) xlateFor(tgtTable, tgtCol string, tgt *relation.ColumnDict,
	srcTable, srcCol string, src *relation.ColumnDict) []int32 {

	cacheKey := tgtTable + "." + tgtCol + "|" + srcTable + "." + srcCol
	e.mu.Lock()
	defer e.mu.Unlock()
	if xl, ok := e.xlate[cacheKey]; ok {
		return xl
	}
	xl := relation.TranslateCodes(tgt, src)
	e.xlate[cacheKey] = xl
	return xl
}

// executeKernel stages a query through the vectorized kernels.
func (e *Engine) executeKernel(q *workload.Query) (*Result, error) {
	tables, order, err := e.plan(q)
	if err != nil {
		return nil, err
	}

	vecAliases := map[string]*vecAlias{}
	byTable := map[string][]*vecAlias{}
	for _, alias := range q.Aliases() {
		base := q.BaseTable(alias)
		a := &vecAlias{alias: alias, table: base, filter: q.FilterOn(alias),
			keys: map[string]*cachedKeys{}}
		vecAliases[alias] = a
		byTable[base] = append(byTable[base], a)
	}

	// Batch zone-map pruning: compile each filter's range evaluator once,
	// then sweep all of the table's candidate blocks in one pass. A block
	// survives if any alias's filter might match it.
	for _, name := range order {
		ts := tables[name]
		zones := e.store.Zones(name)
		fns := make([]func(predicate.Ranges) predicate.Tri, len(byTable[name]))
		for i, a := range byTable[name] {
			fns[i] = predicate.CompileRanges(a.filter)
		}
		kept := ts.candidates[:0]
		for _, id := range ts.candidates {
			rs := zones[id].Ranges()
			for _, fn := range fns {
				if fn(rs) != predicate.TriFalse {
					kept = append(kept, id)
					break
				}
			}
		}
		ts.candidates = kept
		ts.afterZoneMap = len(kept)
	}

	// diPs: plan-time pruning from zone-map range sets (§3.1.1).
	if e.opts.DiPs {
		e.applyDiPs(q, tables)
	}
	for _, ts := range tables {
		ts.afterDiPs = len(ts.candidates)
	}

	// Compile compressed-domain scans (one per table; literals are
	// translated into each table's encoding once per query), then queue
	// readahead for the admitted candidate blocks. Runtime pruning below
	// may still shrink the sets — prefetching a superset is harmless, it
	// only warms the cache.
	scans := map[string]block.CompressedScan{}
	if !e.opts.DecodeScan {
		if cs, ok := e.store.(block.CompressedScanner); ok {
			for _, name := range order {
				filters := make([]predicate.Predicate, len(byTable[name]))
				for i, a := range byTable[name] {
					filters[i] = a.filter
				}
				if scan := cs.CompileScan(name, filters); scan != nil {
					scans[name] = scan
				}
			}
		}
	}
	if !e.opts.NoReadahead {
		for _, name := range order {
			ts := tables[name]
			if len(ts.candidates) == 0 {
				continue
			}
			if scan := scans[name]; scan != nil {
				scan.Prefetch(ts.candidates)
			} else if pf, ok := e.store.(block.Prefetcher); ok {
				pf.Prefetch(name, ts.candidates)
			}
		}
	}

	reducers := 0
	for _, name := range matOrderOf(tables, order) {
		ts := tables[name]
		if e.opts.SemiJoinReduction || e.opts.SecondaryIndexes[name] != "" {
			reducers += e.blockPruneKernel(q, ts, vecAliases, tables)
		}
		if err := e.scanKernel(ts, byTable[name], scans[name]); err != nil {
			return nil, err
		}
	}

	joinProbes := e.reduceKernel(q, vecAliases)

	surviving := make(map[string]int, len(vecAliases))
	for alias, a := range vecAliases {
		surviving[alias] = a.count
	}
	// The aggregate folds consume the alias survivor masks, so the pooled
	// masks are released only after folding.
	aggs, err := e.foldAggregatesKernel(q, vecAliases, tables)
	for _, a := range vecAliases {
		if a.setBuf != nil {
			putDense(a.setBuf)
		}
	}
	if err != nil {
		return nil, err
	}
	res := e.assemble(q, order, tables, surviving, joinProbes, reducers)
	res.Aggregates = aggs
	return res, nil
}

// scanKernel meters the reads of the table's candidate blocks and computes
// each alias's filtered row set as one dense bitset: the filter's
// full-table mask ANDed with the bitset of rows present in the candidate
// blocks (blocks hold arbitrary row subsets, so the two are independent).
//
// With a compiled compressed scan, candidate blocks are read in encoded
// form and each supported filter is evaluated directly on the encoded
// pages (ScanBlock ORs block-local survivors into the alias's dense mask
// and meters the read identically to ReadBlock); filters the compressed
// compiler rejected fall back to FillMask over the base table, exactly the
// decode path's computation. Either way the alias masks come out
// bit-identical.
func (e *Engine) scanKernel(ts *tableState, aliases []*vecAlias, scan block.CompressedScan) error {
	tbl := e.ds.Table(ts.table)
	if tbl == nil {
		return fmt.Errorf("engine: dataset missing table %q", ts.table)
	}
	n := tbl.NumRows()
	inBuf := grabDense(n)
	defer putDense(inBuf)
	inBlocks := inBuf.dense()
	if scan != nil {
		supported := scan.Supported()
		scanMasks := make([][]uint64, len(aliases))
		for i, a := range aliases {
			a.setBuf = grabDense(n)
			a.set = a.setBuf.dense()
			if supported[i] {
				scanMasks[i] = a.set
			}
		}
		for _, id := range ts.candidates {
			rows, err := scan.ScanBlock(id, scanMasks)
			if err != nil {
				return err
			}
			ts.blocksRead++
			ts.rowsRead += len(rows)
			for _, r := range rows {
				inBlocks.Set(int(r))
			}
		}
		for i, a := range aliases {
			if !supported[i] {
				predicate.FillMask(a.filter, tbl, a.set)
				a.set.And(inBlocks)
			}
			a.count = a.set.Count()
		}
		ts.read = true
		return nil
	}
	for _, id := range ts.candidates {
		b, err := e.store.ReadBlock(ts.table, id)
		if err != nil {
			return err
		}
		ts.blocksRead++
		ts.rowsRead += b.NumRows()
		for _, r := range b.Rows {
			inBlocks.Set(int(r))
		}
	}
	for _, a := range aliases {
		a.setBuf = grabDense(n)
		a.set = a.setBuf.dense()
		predicate.FillMask(a.filter, tbl, a.set)
		a.set.And(inBlocks)
		a.count = a.set.Count()
	}
	ts.read = true
	return nil
}

// blockPruneKernel is runtimeBlockPrune over vectorized alias state: the
// materialized side's key set comes from the per-column cache, and int
// keys probe zone intervals through a primitive binary search instead of
// boxed comparisons.
func (e *Engine) blockPruneKernel(q *workload.Query, ts *tableState,
	aliases map[string]*vecAlias, tables map[string]*tableState) int {

	reducers := 0
	for _, j := range q.Joins {
		var otherAlias, myCol, otherCol string
		rByL, lByR := prunableDirections(j.Type)
		switch {
		case aliasOnTable(q, j.Right, ts.table) && rByL:
			otherAlias, myCol, otherCol = j.Left, j.RightColumn, j.LeftColumn
		case aliasOnTable(q, j.Left, ts.table) && lByR:
			otherAlias, myCol, otherCol = j.Right, j.LeftColumn, j.RightColumn
		default:
			continue
		}
		other := aliases[otherAlias]
		otherTS := tables[other.table]
		if otherTS == nil || !otherTS.read || other.table == ts.table {
			continue
		}
		otherTbl := e.ds.Table(other.table)
		if !tableHasColumn(otherTbl, otherCol) {
			// No keys to reduce with (see runtimeBlockPrune).
			continue
		}
		ck := e.keysFor(other, otherTbl, otherCol)
		if e.opts.SecondaryIndexes[ts.table] == myCol {
			if e.secondaryIndexPrune(ts, myCol, ck.boxedKeys()) {
				reducers++
			}
			continue
		}
		if !e.opts.SemiJoinReduction {
			// SI configured for a different column only: no reducer is
			// built, so no setup time is charged.
			continue
		}
		reducers++
		zones := e.store.Zones(ts.table)
		ints, isInt := ck.intKeys()
		kept := ts.candidates[:0]
		for _, id := range ts.candidates {
			iv := zones[id].Column(myCol)
			hit, handled := false, false
			if isInt {
				hit, handled = anyIntKeyInInterval(ints, iv)
			}
			if !handled {
				hit = anyKeyInInterval(ck.valueKeys(), iv)
			}
			if hit {
				kept = append(kept, id)
			}
		}
		ts.candidates = kept
	}
	return reducers
}

// dirMemo records, per join direction, the (source, target) versions as of
// the last time the target was reduced by the source's keys. Reduction is
// idempotent, so while both versions are unchanged re-running the scan is
// provably a no-op and is skipped; the probe charges still accrue, keeping
// the cost model identical to the reference path.
type dirMemo struct {
	srcVer, tgtVer int
	valid          bool
}

// reduceKernel is the vectorized semantic-reduction fixpoint: identical
// pass structure and probe accounting to semanticReduce, with row scans
// running over coded bitsets and skipped when the direction's inputs are
// unchanged.
func (e *Engine) reduceKernel(q *workload.Query, aliases map[string]*vecAlias) int {
	// memo[2i] covers reducing join i's left side by the right's keys;
	// memo[2i+1] the opposite direction.
	memo := make([]dirMemo, 2*len(q.Joins))
	probes := 0
	for pass := 0; pass < e.opts.MaxReductionPasses; pass++ {
		changed := false
		for i, j := range q.Joins {
			l, r := aliases[j.Left], aliases[j.Right]
			lt, rt := e.ds.Table(l.table), e.ds.Table(r.table)
			if !tableHasColumn(lt, j.LeftColumn) || !tableHasColumn(rt, j.RightColumn) {
				// A missing join column yields no key set; reducing by it
				// would wrongly drop every row. Skip the edge (see
				// semanticReduce).
				continue
			}
			lByR, rByL := &memo[2*i], &memo[2*i+1]
			switch j.Type {
			case workload.InnerJoin, workload.SemiJoin:
				// Snapshot both key sets before either side shrinks,
				// like the scalar path.
				lk, lv := e.keysFor(l, lt, j.LeftColumn), l.version
				rk, rv := e.keysFor(r, rt, j.RightColumn), r.version
				probes += l.count + r.count
				if e.applyReduce(l, lt, j.LeftColumn, r.table, j.RightColumn, rk, rv, false, lByR) {
					changed = true
				}
				if e.applyReduce(r, rt, j.RightColumn, l.table, j.LeftColumn, lk, lv, false, rByL) {
					changed = true
				}
			case workload.LeftOuterJoin:
				lk, lv := e.keysFor(l, lt, j.LeftColumn), l.version
				probes += r.count
				if e.applyReduce(r, rt, j.RightColumn, l.table, j.LeftColumn, lk, lv, false, rByL) {
					changed = true
				}
			case workload.RightOuterJoin:
				rk, rv := e.keysFor(r, rt, j.RightColumn), r.version
				probes += l.count
				if e.applyReduce(l, lt, j.LeftColumn, r.table, j.RightColumn, rk, rv, false, lByR) {
					changed = true
				}
			case workload.LeftAntiSemiJoin:
				rk, rv := e.keysFor(r, rt, j.RightColumn), r.version
				probes += l.count
				if e.applyReduce(l, lt, j.LeftColumn, r.table, j.RightColumn, rk, rv, true, lByR) {
					changed = true
				}
			case workload.RightAntiSemiJoin:
				lk, lv := e.keysFor(l, lt, j.LeftColumn), l.version
				probes += r.count
				if e.applyReduce(r, rt, j.RightColumn, l.table, j.LeftColumn, lk, lv, true, rByL) {
					changed = true
				}
			case workload.FullOuterJoin:
				// Both sides preserved: no reduction, and probes accrue
				// once (see semanticReduce).
				if pass == 0 {
					probes += l.count + r.count
				}
			}
		}
		if !changed {
			break
		}
	}
	return probes
}

// applyReduce keeps only tgt rows whose tgtCol key membership in the
// source key set matches (anti keeps non-members), mirroring the scalar
// reduceTo. srcVer is the source alias's version at key-snapshot time; the
// scan is skipped when the memo proves both sides unchanged since the
// direction last ran. Reports whether the row set shrank.
func (e *Engine) applyReduce(tgt *vecAlias, tgtTbl *relation.Table, tgtCol, srcTable, srcCol string,
	src *cachedKeys, srcVer int, anti bool, m *dirMemo) bool {

	if m.valid && m.srcVer == srcVer && m.tgtVer == tgt.version {
		return false
	}
	td := e.dictFor(tgt.table, tgtCol)
	removed := false
	if td != nil && src.dict != nil {
		xl := e.xlateFor(tgt.table, tgtCol, td, srcTable, srcCol, src.dict)
		removed = reduceCoded(tgt.set, td.Codes, xl, src.coded, anti)
	} else {
		removed = reduceBoxed(tgt.set, tgtTbl, tgtCol, src.boxedKeys(), anti)
	}
	if removed {
		tgt.count = tgt.set.Count()
		tgt.version++
	}
	*m = dirMemo{srcVer: srcVer, tgtVer: tgt.version, valid: true}
	return removed
}

// reduceCoded drops set rows whose membership — row code, translated into
// the source dictionary, probed against the source code set — equals anti.
// Null rows (code -1) are never members, matching the scalar reduceTo.
func reduceCoded(set bitmap.Dense, codes, xl []int32, srcCodes bitmap.Dense, anti bool) bool {
	removed := false
	for w := range set {
		word := set[w]
		for word != 0 {
			t := word & -word
			r := w<<6 | bits.TrailingZeros64(word)
			word ^= t
			member := false
			if c := codes[r]; c >= 0 {
				if sc := xl[c]; sc >= 0 {
					member = srcCodes.Get(int(sc))
				}
			}
			if member == anti {
				set[w] &^= t
				removed = true
			}
		}
	}
	return removed
}

// reduceBoxed is the boxed fallback for non-encodable columns, with the
// exact membership semantics of the scalar reduceTo.
func reduceBoxed(set bitmap.Dense, tbl *relation.Table, col string,
	keys map[value.Value]struct{}, anti bool) bool {

	ci, ok := tbl.Schema().ColumnIndex(col)
	if !ok {
		return false
	}
	removed := false
	for w := range set {
		word := set[w]
		for word != 0 {
			t := word & -word
			r := w<<6 | bits.TrailingZeros64(word)
			word ^= t
			v := tbl.Value(r, ci)
			_, member := keys[v]
			if v.IsNull() {
				member = false
			}
			if member == anti {
				set[w] &^= t
				removed = true
			}
		}
	}
	return removed
}
