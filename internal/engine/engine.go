// Package engine is the simulated cloud analytics service ("Cloud DW" in
// the paper, §6.1.2). It executes structured queries over a block.Backend:
// per-table block sets come from the installed layout's router, zone maps
// skip irrelevant blocks, optional data-induced predicates (diPs, [22])
// prune blocks at plan time, and optional semi-join reduction prunes blocks
// and rows at execution time. A calibrated cost model turns I/O and tuple
// counts into simulated end-to-end seconds.
//
// The engine's result — per-alias surviving row counts under full semantic
// reduction — is a function of the data and the query only, never of the
// layout, which the test suite uses as a cross-layout correctness
// invariant. The one exception is an anti join's non-preserved side: its
// rows never reach the result (they only supply the key set — the very
// irrelevance that makes the side block-prunable per §4.1.1), so its count
// reflects whichever blocks the layout let the engine skip.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"mto/internal/block"
	"mto/internal/layout"
	"mto/internal/predicate"
	"mto/internal/relation"
	"mto/internal/workload"
)

// Options toggles the execution-time features whose presence the paper's
// experiments vary.
type Options struct {
	// SemiJoinReduction enables Cloud DW's runtime pruning: once a table
	// is materialized, its exact join keys prune the blocks of tables it
	// joins to (§6.1.2, §6.2.2).
	SemiJoinReduction bool
	// DiPs enables data-induced predicates: plan-time block pruning from
	// zone-map-derived range sets pushed across joins (§3.1.1, §6.1.3).
	DiPs bool
	// RangeSetSize bounds the number of ranges in a diP (paper uses 20).
	RangeSetSize int
	// MaxReductionPasses caps the semantic reduction fixpoint.
	MaxReductionPasses int
	// SecondaryIndexes maps table → join column carrying a secondary
	// index. When join keys for that column arrive from a materialized
	// neighbor, the engine reads only the blocks physically containing
	// matching rows, regardless of clustering — the SI comparison of
	// §6.3.1.
	SecondaryIndexes map[string]string
	// DecodeScan disables compressed-domain execution: scans read fully
	// decoded blocks (Backend.ReadBlock) even when the backend supports
	// evaluating predicates on encoded pages. Compressed execution is on
	// by default and produces byte-identical Results; this switch exists
	// for A/B benchmarking and identity tests.
	DecodeScan bool
	// NoReadahead disables async block prefetching on backends that
	// support it. Readahead never changes Results — only wall-clock time
	// and the Prefetched/ReadaheadHits counters.
	NoReadahead bool
}

// DefaultOptions mirrors the plain simulation setting (no runtime extras).
func DefaultOptions() Options {
	return Options{RangeSetSize: 20, MaxReductionPasses: 8}
}

// CloudDWOptions mirrors the commercial service: semi-join reduction on.
func CloudDWOptions() Options {
	o := DefaultOptions()
	o.SemiJoinReduction = true
	return o
}

// TableAccess reports the I/O for one base table of one query, with the
// per-stage pruning breakdown: how many candidate blocks survived layout
// routing, then zone-map skipping, then plan-time diPs, then runtime
// semi-join / secondary-index pruning. Each stage can only shrink the set.
type TableAccess struct {
	Table       string
	BlocksRead  int
	TotalBlocks int
	RowsScanned int

	// AfterRouting counts candidates the layout router returned.
	AfterRouting int
	// AfterZoneMap counts candidates surviving zone-map skipping.
	AfterZoneMap int
	// AfterDiPs counts candidates surviving plan-time diPs (equals
	// AfterZoneMap when diPs are off).
	AfterDiPs int
}

// Result is the outcome of executing one query.
type Result struct {
	Query string
	// PerTable maps base table → access stats.
	PerTable map[string]*TableAccess
	// BlocksRead is the total blocks read.
	BlocksRead int
	// TotalBlocks is the total number of blocks in the accessed base
	// tables (the denominator of the paper's "fraction of blocks" metric).
	TotalBlocks int
	// SurvivingRows maps alias → rows that participate in the query
	// result after all filters and join semantics. Layout-invariant.
	SurvivingRows map[string]int
	// Aggregates holds the query's computed aggregates in declaration
	// order (nil when the query requests none). Values are identical
	// whichever fold produced them — compressed per-block folds over
	// encoded pages or the materialized bitmap fold — and, like
	// SurvivingRows, layout-invariant.
	Aggregates []AggValue
	// Seconds is the simulated end-to-end execution time.
	Seconds float64
}

// FractionOfBlocks returns BlocksRead / TotalBlocks (0 when no table).
func (r *Result) FractionOfBlocks() float64 {
	if r.TotalBlocks == 0 {
		return 0
	}
	return float64(r.BlocksRead) / float64(r.TotalBlocks)
}

// Engine executes queries against one installed design.
//
// An Engine is safe for concurrent Execute calls: all per-query state is
// local to a call, and the lazily built secondary-index caches below are
// guarded by mu. RunWorkload exploits this to replay workloads in parallel.
type Engine struct {
	store  block.Backend
	design *layout.Design
	ds     *relation.Dataset
	opts   Options

	// Lazily built cross-query caches. mu guards all four maps; entries
	// are immutable once stored, so holders may read them after releasing
	// the lock. keyIdx and dicts cache failed builds as nil entries so
	// unindexable/unencodable columns are not retried on every query.
	mu      sync.Mutex
	keyIdx  map[string]*relation.KeyIndex
	blockOf map[string][]int32 // table → row → block ID
	dicts   map[string]*relation.ColumnDict
	xlate   map[string][]int32 // "tgt.col|src.col" → target code → source code

	// counters accumulates per-engine execution stats; see StatsSnapshot.
	counters engineCounters
}

// New returns an engine over the store/design pair.
func New(store block.Backend, design *layout.Design, ds *relation.Dataset, opts Options) *Engine {
	if opts.RangeSetSize <= 0 {
		opts.RangeSetSize = 20
	}
	if opts.MaxReductionPasses <= 0 {
		opts.MaxReductionPasses = 8
	}
	return &Engine{
		store: store, design: design, ds: ds, opts: opts,
		keyIdx:  map[string]*relation.KeyIndex{},
		blockOf: map[string][]int32{},
		dicts:   map[string]*relation.ColumnDict{},
		xlate:   map[string][]int32{},
	}
}

// aliasState tracks one table reference during scalar (reference)
// execution.
type aliasState struct {
	alias  string
	table  string
	filter predicate.Predicate
	rows   []int32 // surviving row indexes (after scan + filters)
}

// tableState tracks one base table's block set during execution. Both the
// vectorized and the reference path stage candidates through it, so the
// per-stage accounting is computed identically.
type tableState struct {
	table      string
	candidates []int // block IDs still scheduled for reading
	read       bool
	rowsRead   int
	blocksRead int

	afterRouting, afterZoneMap, afterDiPs int
}

// Execute runs q and returns its metrics via the vectorized kernels.
// ExecuteReference is the retained scalar path; the two produce identical
// Results (pinned by the kernel identity tests).
func (e *Engine) Execute(q *workload.Query) (*Result, error) {
	res, err := e.executeKernel(q)
	e.counters.note(res, err)
	return res, err
}

// plan validates q, groups its base tables in first-reference order, and
// runs layout routing: each table's candidate set starts as the block IDs
// the installed design's router returns.
func (e *Engine) plan(q *workload.Query) (map[string]*tableState, []string, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	tables := map[string]*tableState{}
	var order []string
	for _, alias := range q.Aliases() {
		base := q.BaseTable(alias)
		if tables[base] != nil {
			continue
		}
		ids, ok := e.design.BlocksFor(q, base)
		if !ok {
			return nil, nil, fmt.Errorf("engine: query %s touches unknown table %q", q.ID, base)
		}
		if e.store.NumBlocks(base) < 0 {
			return nil, nil, fmt.Errorf("engine: no layout installed for %q", base)
		}
		tables[base] = &tableState{table: base, candidates: ids, afterRouting: len(ids)}
		order = append(order, base)
	}
	return tables, order, nil
}

// matOrderOf returns the tables smallest-candidate-set-first, so semi-join
// reduction can use exact keys from already-read tables to prune later
// ones.
func matOrderOf(tables map[string]*tableState, order []string) []string {
	matOrder := append([]string(nil), order...)
	sort.Slice(matOrder, func(i, j int) bool {
		a, b := tables[matOrder[i]], tables[matOrder[j]]
		if len(a.candidates) != len(b.candidates) {
			return len(a.candidates) < len(b.candidates)
		}
		return a.table < b.table
	})
	return matOrder
}

// assemble folds the staged table metrics and join accounting into a
// Result. Both execution paths share it, so the floating-point additions
// happen in the same order and the simulated Seconds agree bit for bit.
func (e *Engine) assemble(q *workload.Query, order []string, tables map[string]*tableState,
	surviving map[string]int, joinProbes, reducers int) *Result {

	cost := e.store.Cost()
	res := &Result{
		Query:         q.ID,
		PerTable:      map[string]*TableAccess{},
		SurvivingRows: surviving,
		Seconds:       cost.QueryOverheadSeconds,
	}
	for _, name := range order {
		ts := tables[name]
		ta := &TableAccess{
			Table:        name,
			BlocksRead:   ts.blocksRead,
			TotalBlocks:  e.store.TotalBlocks(name),
			RowsScanned:  ts.rowsRead,
			AfterRouting: ts.afterRouting,
			AfterZoneMap: ts.afterZoneMap,
			AfterDiPs:    ts.afterDiPs,
		}
		res.PerTable[name] = ta
		res.BlocksRead += ta.BlocksRead
		res.TotalBlocks += ta.TotalBlocks
		res.Seconds += float64(ta.BlocksRead)*cost.BlockReadSeconds +
			float64(ta.RowsScanned)*cost.TupleScanSeconds
	}
	res.Seconds += float64(joinProbes)*cost.TupleJoinSeconds +
		float64(reducers)*cost.SemiJoinSetupSeconds
	return res
}
