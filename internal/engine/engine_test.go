package engine

import (
	"math/rand"
	"testing"

	"mto/internal/block"
	"mto/internal/layout"
	"mto/internal/predicate"
	"mto/internal/relation"
	"mto/internal/value"
	"mto/internal/workload"
)

// starDS builds dim(id unique, attr) + fact(fid, did, v, d) where fact.d is
// a "date" correlated with fid (sorted insertion order).
func starDS(t *testing.T, dims, factRows int, seed int64) *relation.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := relation.NewDataset()
	dim := relation.NewTable(relation.MustSchema("dim",
		relation.Column{Name: "id", Type: value.KindInt, Unique: true},
		relation.Column{Name: "attr", Type: value.KindInt},
	))
	for i := 0; i < dims; i++ {
		dim.MustAppendRow(value.Int(int64(i)), value.Int(int64(i%10)))
	}
	fact := relation.NewTable(relation.MustSchema("fact",
		relation.Column{Name: "fid", Type: value.KindInt, Unique: true},
		relation.Column{Name: "did", Type: value.KindInt},
		relation.Column{Name: "v", Type: value.KindInt},
		relation.Column{Name: "d", Type: value.KindInt},
	))
	for i := 0; i < factRows; i++ {
		fact.MustAppendRow(
			value.Int(int64(i)),
			value.Int(int64(rng.Intn(dims))),
			value.Int(int64(rng.Intn(1000))),
			value.Int(int64(i/100)), // date advances with fid
		)
	}
	ds.MustAddTable(dim)
	ds.MustAddTable(fact)
	return ds
}

func installBaseline(t *testing.T, ds *relation.Dataset, blockSize int) (*block.Store, *layout.Design) {
	t.Helper()
	d, err := layout.SortKeyDesign(ds, layout.SortKeys{"fact": "d", "dim": "id"}, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	store := block.NewStore(block.DefaultCostModel())
	if _, err := d.Install(store, nil, 0); err != nil {
		t.Fatal(err)
	}
	return store, d
}

func joinQuery(id string, attr int64, extra ...predicate.Predicate) *workload.Query {
	q := workload.NewQuery(id,
		workload.TableRef{Table: "dim"},
		workload.TableRef{Table: "fact"},
	)
	q.AddJoin("dim", "id", "fact", "did")
	q.Filter("dim", predicate.NewComparison("attr", predicate.Eq, value.Int(attr)))
	for _, p := range extra {
		q.Filter("fact", p)
	}
	return q
}

func TestExecuteBasics(t *testing.T) {
	ds := starDS(t, 100, 10000, 1)
	store, design := installBaseline(t, ds, 500)
	e := New(store, design, ds, DefaultOptions())

	q := joinQuery("q", 3)
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksRead == 0 || res.TotalBlocks == 0 {
		t.Fatal("no blocks read")
	}
	if res.FractionOfBlocks() <= 0 || res.FractionOfBlocks() > 1 {
		t.Errorf("fraction = %g", res.FractionOfBlocks())
	}
	if res.Seconds <= 0 {
		t.Error("no simulated time")
	}
	// Surviving dim rows = dims with attr=3 (10 of 100).
	if got := res.SurvivingRows["dim"]; got != 10 {
		t.Errorf("dim survivors = %d, want 10", got)
	}
	// Surviving fact rows = fact rows joining those dims; all have
	// attr = did%10 == 3.
	fact := ds.Table("fact")
	want := 0
	for r := 0; r < fact.NumRows(); r++ {
		if fact.ValueByName(r, "did").Int()%10 == 3 {
			want++
		}
	}
	if got := res.SurvivingRows["fact"]; got != want {
		t.Errorf("fact survivors = %d, want %d", got, want)
	}
	if res.PerTable["fact"].RowsScanned == 0 {
		t.Error("no rows scanned")
	}
}

func TestZoneMapSkipping(t *testing.T) {
	ds := starDS(t, 100, 10000, 2)
	store, design := installBaseline(t, ds, 500)
	e := New(store, design, ds, DefaultOptions())

	// fact sorted by d: a selective d filter reads few fact blocks.
	q := workload.NewQuery("dfilter", workload.TableRef{Table: "fact"})
	q.Filter("fact", predicate.NewComparison("d", predicate.Lt, value.Int(5)))
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	factBlocks := store.Layout("fact").NumBlocks()
	if res.PerTable["fact"].BlocksRead >= factBlocks/2 {
		t.Errorf("zone maps failed: read %d of %d", res.PerTable["fact"].BlocksRead, factBlocks)
	}
	// Survivors = 500 rows (d ∈ 0..4 → fids 0..499).
	if got := res.SurvivingRows["fact"]; got != 500 {
		t.Errorf("survivors = %d, want 500", got)
	}
}

func TestSemiJoinReductionPrunesBlocks(t *testing.T) {
	// dim filter selects dims 0..9 (attr via id<10); fact.did values for
	// those dims appear across fact, but with fact sorted by did the
	// matching rows cluster → runtime pruning by exact keys skips blocks.
	ds := starDS(t, 100, 10000, 3)
	d, err := layout.SortKeyDesign(ds, layout.SortKeys{"fact": "did", "dim": "id"}, 500)
	if err != nil {
		t.Fatal(err)
	}
	store := block.NewStore(block.DefaultCostModel())
	if _, err := d.Install(store, nil, 0); err != nil {
		t.Fatal(err)
	}

	q := workload.NewQuery("semi",
		workload.TableRef{Table: "dim"},
		workload.TableRef{Table: "fact"},
	)
	q.AddJoin("dim", "id", "fact", "did")
	q.Filter("dim", predicate.NewComparison("id", predicate.Lt, value.Int(10)))

	plain, err := New(store, d, ds, DefaultOptions()).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := New(store, d, ds, CloudDWOptions()).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if reduced.PerTable["fact"].BlocksRead >= plain.PerTable["fact"].BlocksRead {
		t.Errorf("semi-join reduction did not prune: %d vs %d",
			reduced.PerTable["fact"].BlocksRead, plain.PerTable["fact"].BlocksRead)
	}
	// The result is identical regardless of pruning.
	for alias, n := range plain.SurvivingRows {
		if reduced.SurvivingRows[alias] != n {
			t.Errorf("%s survivors differ: %d vs %d", alias, n, reduced.SurvivingRows[alias])
		}
	}
}

func TestDiPsPruneBlocks(t *testing.T) {
	// dim must span several blocks so its zone maps reflect the filter:
	// 1000 dims at block size 100 → 10 dim blocks; filter id < 10 leaves
	// only dim block 0 alive, whose zone [0, 99] becomes the diP.
	ds := starDS(t, 1000, 10000, 4)
	// fact sorted by did so diP ranges from dim blocks cluster.
	d, err := layout.SortKeyDesign(ds, layout.SortKeys{"fact": "did", "dim": "id"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	store := block.NewStore(block.DefaultCostModel())
	if _, err := d.Install(store, nil, 0); err != nil {
		t.Fatal(err)
	}
	q := workload.NewQuery("dip",
		workload.TableRef{Table: "dim"},
		workload.TableRef{Table: "fact"},
	)
	q.AddJoin("dim", "id", "fact", "did")
	q.Filter("dim", predicate.NewComparison("id", predicate.Lt, value.Int(10)))

	plain, err := New(store, d, ds, DefaultOptions()).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.DiPs = true
	withDips, err := New(store, d, ds, opts).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if withDips.PerTable["fact"].BlocksRead >= plain.PerTable["fact"].BlocksRead {
		t.Errorf("diPs did not prune: %d vs %d",
			withDips.PerTable["fact"].BlocksRead, plain.PerTable["fact"].BlocksRead)
	}
	for alias, n := range plain.SurvivingRows {
		if withDips.SurvivingRows[alias] != n {
			t.Errorf("%s survivors differ under diPs", alias)
		}
	}
}

func TestResultLayoutInvariance(t *testing.T) {
	ds := starDS(t, 100, 10000, 5)
	queries := []*workload.Query{
		joinQuery("a", 1),
		joinQuery("b", 7, predicate.NewComparison("v", predicate.Lt, value.Int(200))),
	}
	// Layout 1: fact by d. Layout 2: fact by v.
	layouts := []layout.SortKeys{
		{"fact": "d", "dim": "id"},
		{"fact": "v", "dim": "attr"},
	}
	var results [][]map[string]int
	for _, keys := range layouts {
		d, err := layout.SortKeyDesign(ds, keys, 500)
		if err != nil {
			t.Fatal(err)
		}
		store := block.NewStore(block.DefaultCostModel())
		if _, err := d.Install(store, nil, 0); err != nil {
			t.Fatal(err)
		}
		e := New(store, d, ds, CloudDWOptions())
		var rs []map[string]int
		for _, q := range queries {
			res, err := e.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			rs = append(rs, res.SurvivingRows)
		}
		results = append(results, rs)
	}
	for qi := range queries {
		for alias, n := range results[0][qi] {
			if results[1][qi][alias] != n {
				t.Errorf("query %d alias %s: %d vs %d across layouts",
					qi, alias, n, results[1][qi][alias])
			}
		}
	}
}

func TestJoinSemantics(t *testing.T) {
	// Tiny hand-built dataset for precise semantics.
	ds := relation.NewDataset()
	l := relation.NewTable(relation.MustSchema("L",
		relation.Column{Name: "k", Type: value.KindInt},
	))
	r := relation.NewTable(relation.MustSchema("R",
		relation.Column{Name: "k", Type: value.KindInt},
	))
	for _, v := range []int64{1, 2, 3, 4} {
		l.MustAppendRow(value.Int(v))
	}
	for _, v := range []int64{3, 4, 5} {
		r.MustAppendRow(value.Int(v))
	}
	ds.MustAddTable(l)
	ds.MustAddTable(r)
	d, err := layout.SortKeyDesign(ds, layout.SortKeys{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	store := block.NewStore(block.DefaultCostModel())
	if _, err := d.Install(store, nil, 0); err != nil {
		t.Fatal(err)
	}
	e := New(store, d, ds, DefaultOptions())

	cases := []struct {
		jt           workload.JoinType
		wantL, wantR int
	}{
		{workload.InnerJoin, 2, 2},         // {3,4} both sides
		{workload.SemiJoin, 2, 2},          // same reduction
		{workload.LeftOuterJoin, 4, 2},     // L preserved, R reduced
		{workload.RightOuterJoin, 2, 3},    // R preserved, L reduced
		{workload.FullOuterJoin, 4, 3},     // both preserved
		{workload.LeftAntiSemiJoin, 2, 3},  // L keeps {1,2}, R untouched
		{workload.RightAntiSemiJoin, 4, 1}, // R keeps {5}, L untouched
	}
	for _, c := range cases {
		q := workload.NewQuery("jt",
			workload.TableRef{Table: "L"},
			workload.TableRef{Table: "R"},
		)
		q.AddTypedJoin(workload.Join{
			Left: "L", LeftColumn: "k", Right: "R", RightColumn: "k", Type: c.jt,
		})
		res, err := e.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.SurvivingRows["L"] != c.wantL || res.SurvivingRows["R"] != c.wantR {
			t.Errorf("%s: survivors L=%d R=%d, want L=%d R=%d",
				c.jt, res.SurvivingRows["L"], res.SurvivingRows["R"], c.wantL, c.wantR)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	ds := starDS(t, 10, 100, 6)
	store, design := installBaseline(t, ds, 50)
	e := New(store, design, ds, DefaultOptions())

	bad := workload.NewQuery("bad", workload.TableRef{Table: "nope"})
	if _, err := e.Execute(bad); err == nil {
		t.Error("unknown table accepted")
	}
	invalid := workload.NewQuery("inv", workload.TableRef{Table: "dim"})
	invalid.Weight = -1
	if _, err := e.Execute(invalid); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestMergeRanges(t *testing.T) {
	mk := func(lo, hi int64) predicate.Interval {
		return predicate.NewInterval(value.Int(lo), value.Int(hi), true, true)
	}
	// Overlapping intervals merge.
	got := mergeRanges([]predicate.Interval{mk(0, 10), mk(5, 20), mk(40, 50)}, 20)
	if len(got) != 2 {
		t.Fatalf("merged = %v", got)
	}
	if got[0].Max.Int() != 20 || got[1].Min.Int() != 40 {
		t.Errorf("merged = %v", got)
	}
	// Coalescing to k.
	var many []predicate.Interval
	for i := int64(0); i < 100; i++ {
		many = append(many, mk(i*10, i*10+1))
	}
	got = mergeRanges(many, 20)
	if len(got) > 20 {
		t.Errorf("coalesce produced %d ranges", len(got))
	}
	if got := mergeRanges(nil, 5); got != nil {
		t.Error("empty input should give nil")
	}
}

func TestAnyKeyInInterval(t *testing.T) {
	keys := []value.Value{value.Int(5), value.Int(10), value.Int(20)}
	iv := func(lo, hi int64, loInc, hiInc bool) predicate.Interval {
		return predicate.NewInterval(value.Int(lo), value.Int(hi), loInc, hiInc)
	}
	if !anyKeyInInterval(keys, iv(8, 12, true, true)) {
		t.Error("10 in [8,12]")
	}
	if anyKeyInInterval(keys, iv(11, 19, true, true)) {
		t.Error("nothing in [11,19]")
	}
	if anyKeyInInterval(keys, iv(10, 20, false, false)) {
		t.Error("exclusive (10,20) contains no key")
	}
	if !anyKeyInInterval(keys, predicate.Unbounded()) {
		t.Error("unbounded contains keys")
	}
	if anyKeyInInterval(nil, predicate.Unbounded()) {
		t.Error("no keys → false")
	}
	if anyKeyInInterval(keys, predicate.Interval{Empty: true}) {
		t.Error("empty interval → false")
	}
}

func TestSecondaryIndexPruning(t *testing.T) {
	// fact sorted by an unrelated column: join keys are scattered, so
	// zone-interval pruning (semi-join reduction) cannot skip blocks —
	// but a secondary index on the join column still can.
	ds := starDS(t, 1000, 20000, 7)
	d, err := layout.SortKeyDesign(ds, layout.SortKeys{"fact": "v", "dim": "id"}, 500)
	if err != nil {
		t.Fatal(err)
	}
	store := block.NewStore(block.DefaultCostModel())
	if _, err := d.Install(store, nil, 0); err != nil {
		t.Fatal(err)
	}
	q := workload.NewQuery("si",
		workload.TableRef{Table: "dim"},
		workload.TableRef{Table: "fact"},
	)
	q.AddJoin("dim", "id", "fact", "did")
	// A mid-domain key: every v-sorted block's did zone interval contains
	// it, so zone-based reduction prunes nothing, while the index knows
	// which ~20 blocks actually hold matching rows.
	q.Filter("dim", predicate.NewComparison("id", predicate.Eq, value.Int(500)))

	semi, err := New(store, d, ds, CloudDWOptions()).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	siOpts := DefaultOptions()
	siOpts.SecondaryIndexes = map[string]string{"fact": "did"}
	si, err := New(store, d, ds, siOpts).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	// ~3/1000 of fact rows match: the SI reads only their blocks.
	if si.PerTable["fact"].BlocksRead >= semi.PerTable["fact"].BlocksRead {
		t.Errorf("SI (%d blocks) should beat zone-based reduction (%d)",
			si.PerTable["fact"].BlocksRead, semi.PerTable["fact"].BlocksRead)
	}
	// The result is unchanged.
	for alias, n := range semi.SurvivingRows {
		if si.SurvivingRows[alias] != n {
			t.Errorf("%s survivors differ under SI", alias)
		}
	}
	// SI on a non-key column type falls back gracefully.
	badOpts := DefaultOptions()
	badOpts.SecondaryIndexes = map[string]string{"fact": "nope"}
	if _, err := New(store, d, ds, badOpts).Execute(q); err != nil {
		t.Fatal(err)
	}
}

// TestUnrelatedSINotCharged is the regression test for reducer accounting:
// configuring a secondary index on a column that no join edge uses must not
// charge SemiJoinSetupSeconds — no reducer is actually built.
func TestUnrelatedSINotCharged(t *testing.T) {
	ds := starDS(t, 100, 10000, 9)
	store, design := installBaseline(t, ds, 500)
	q := joinQuery("q", 3)

	plain, err := New(store, design, ds, DefaultOptions()).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	// SI on fact.v, but the join is on fact.did: runtimeBlockPrune runs
	// (the SI option enables it) yet builds nothing.
	unrelated := DefaultOptions()
	unrelated.SecondaryIndexes = map[string]string{"fact": "v"}
	withSI, err := New(store, design, ds, unrelated).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Seconds != withSI.Seconds {
		t.Errorf("unrelated SI changed cost: %v vs %v (phantom reducer charged)",
			plain.Seconds, withSI.Seconds)
	}
	if plain.BlocksRead != withSI.BlocksRead {
		t.Errorf("unrelated SI changed I/O: %d vs %d", plain.BlocksRead, withSI.BlocksRead)
	}
}

// TestUnknownJoinColumnIsNoOp is the regression test for keysOf's nil
// return: a join column missing from the materialized side's schema must
// make runtime pruning a no-op, not prune every candidate block.
func TestUnknownJoinColumnIsNoOp(t *testing.T) {
	ds := starDS(t, 100, 10000, 10)
	store, design := installBaseline(t, ds, 500)
	q := workload.NewQuery("badcol",
		workload.TableRef{Table: "dim"},
		workload.TableRef{Table: "fact"},
	)
	// dim has no column "nope": the dim side materializes first and its
	// key set for the edge is unknowable.
	q.AddJoin("dim", "nope", "fact", "did")
	q.Filter("dim", predicate.NewComparison("id", predicate.Lt, value.Int(10)))

	plain, err := New(store, design, ds, DefaultOptions()).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		CloudDWOptions(),
		{SemiJoinReduction: false, SecondaryIndexes: map[string]string{"fact": "did"},
			RangeSetSize: 20, MaxReductionPasses: 8},
	} {
		pruned, err := New(store, design, ds, opts).Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := pruned.PerTable["fact"].BlocksRead, plain.PerTable["fact"].BlocksRead; got != want {
			t.Errorf("opts %+v: unknown join column pruned fact to %d blocks, want %d (no-op)",
				opts, got, want)
		}
	}
}

// TestMergeRangesMixedKinds is the regression test for hull with
// non-comparable bounds: coalescing intervals of different value kinds must
// widen to unbounded (conservative) rather than keep one side's bound —
// and must not panic inside Interval.Intersect.
func TestMergeRangesMixedKinds(t *testing.T) {
	ints := func(lo, hi int64) predicate.Interval {
		return predicate.NewInterval(value.Int(lo), value.Int(hi), true, true)
	}
	strs := func(lo, hi string) predicate.Interval {
		return predicate.NewInterval(value.String(lo), value.String(hi), true, true)
	}
	mixed := []predicate.Interval{ints(0, 10), ints(5, 20), strs("a", "m"), strs("p", "z")}

	// Without coalescing pressure the kinds stay separate.
	got := mergeRanges(append([]predicate.Interval(nil), mixed...), 10)
	if len(got) != 3 {
		t.Fatalf("phase-1 merge = %v, want 3 ranges", got)
	}

	// Forcing k=1 merges across kinds: the hull must be unbounded on both
	// sides so no value covered by either input can escape it.
	got = mergeRanges(append([]predicate.Interval(nil), mixed...), 1)
	if len(got) != 1 {
		t.Fatalf("coalesced = %v, want 1 range", got)
	}
	if !got[0].Min.IsNull() || !got[0].Max.IsNull() {
		t.Errorf("mixed-kind hull = %v, want unbounded", got[0])
	}
	for _, v := range []value.Value{value.Int(-5), value.Int(100), value.String("zz")} {
		if !got[0].Contains(v) {
			t.Errorf("conservative hull excludes %v", v)
		}
	}

	// Direct hull check: a's bound must not survive a non-comparable merge.
	h := hull(ints(1, 10), strs("a", "z"))
	if !h.Min.IsNull() || !h.Max.IsNull() {
		t.Errorf("hull(int, string) = %v, want unbounded", h)
	}
}

func TestPruningStageAccounting(t *testing.T) {
	ds := starDS(t, 1000, 10000, 8)
	d, err := layout.SortKeyDesign(ds, layout.SortKeys{"fact": "did", "dim": "id"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	store := block.NewStore(block.DefaultCostModel())
	if _, err := d.Install(store, nil, 0); err != nil {
		t.Fatal(err)
	}
	q := workload.NewQuery("stages",
		workload.TableRef{Table: "dim"},
		workload.TableRef{Table: "fact"},
	)
	q.AddJoin("dim", "id", "fact", "did")
	q.Filter("dim", predicate.NewComparison("id", predicate.Lt, value.Int(10)))
	q.Filter("fact", predicate.NewComparison("d", predicate.Lt, value.Int(1000)))

	opts := CloudDWOptions()
	opts.DiPs = true
	res, err := New(store, d, ds, opts).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, ta := range res.PerTable {
		if ta.AfterRouting < ta.AfterZoneMap || ta.AfterZoneMap < ta.AfterDiPs ||
			ta.AfterDiPs < ta.BlocksRead {
			t.Errorf("%s: stages not monotone: routing=%d zone=%d dips=%d read=%d",
				ta.Table, ta.AfterRouting, ta.AfterZoneMap, ta.AfterDiPs, ta.BlocksRead)
		}
	}
	fact := res.PerTable["fact"]
	if fact.AfterRouting != fact.TotalBlocks {
		t.Errorf("sort layout routing should return all blocks: %d vs %d",
			fact.AfterRouting, fact.TotalBlocks)
	}
	if fact.AfterDiPs >= fact.AfterZoneMap {
		t.Errorf("diPs should prune the did-sorted fact: %d vs %d",
			fact.AfterDiPs, fact.AfterZoneMap)
	}
}
