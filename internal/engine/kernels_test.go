package engine

import (
	"math"
	"reflect"
	"testing"

	"mto/internal/block"
	"mto/internal/layout"
	"mto/internal/predicate"
	"mto/internal/relation"
	"mto/internal/value"
	"mto/internal/workload"
)

// probesOf back-solves the join-probe count from the simulated Seconds of a
// result executed with zero reducers (DefaultOptions): every other term of
// the cost model is reconstructible from the per-table metrics.
func probesOf(t *testing.T, store *block.Store, res *Result) int {
	t.Helper()
	cost := store.Cost()
	s := res.Seconds - cost.QueryOverheadSeconds
	for _, ta := range res.PerTable {
		s -= float64(ta.BlocksRead)*cost.BlockReadSeconds +
			float64(ta.RowsScanned)*cost.TupleScanSeconds
	}
	return int(math.Round(s / cost.TupleJoinSeconds))
}

// TestFullOuterJoinProbesChargedOnce is the regression test for the cost
// model inflating on no-op fixpoint passes: a full outer join never reduces
// either side, so its probe cost must accrue on the first pass only, not on
// every pass another edge keeps the fixpoint running.
func TestFullOuterJoinProbesChargedOnce(t *testing.T) {
	ds := relation.NewDataset()
	mk := func(name string, vals ...int64) {
		tbl := relation.NewTable(relation.MustSchema(name,
			relation.Column{Name: "k", Type: value.KindInt},
		))
		for _, v := range vals {
			tbl.MustAppendRow(value.Int(v))
		}
		ds.MustAddTable(tbl)
	}
	mk("A", 1, 2, 3)
	mk("B", 2, 3, 4)
	mk("C", 7, 8)
	d, err := layout.SortKeyDesign(ds, layout.SortKeys{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	store := block.NewStore(block.DefaultCostModel())
	if _, err := d.Install(store, nil, 0); err != nil {
		t.Fatal(err)
	}
	q := workload.NewQuery("foj",
		workload.TableRef{Table: "A"},
		workload.TableRef{Table: "B"},
		workload.TableRef{Table: "C"},
	)
	q.AddJoin("A", "k", "B", "k") // inner: shrinks both sides on pass 0
	q.AddTypedJoin(workload.Join{
		Left: "A", LeftColumn: "k", Right: "C", RightColumn: "k",
		Type: workload.FullOuterJoin,
	})

	for _, exec := range []struct {
		name string
		run  func(*Engine, *workload.Query) (*Result, error)
	}{
		{"kernel", (*Engine).Execute},
		{"reference", (*Engine).ExecuteReference},
	} {
		e := New(store, d, ds, DefaultOptions())
		res, err := exec.run(e, q)
		if err != nil {
			t.Fatal(err)
		}
		// Pass 0: inner 3+3 probes (A,B → {2,3}), then FOJ 2+2 with A
		// already reduced. Pass 1 (rerun because pass 0 changed): inner
		// 2+2, FOJ charged nothing. Total 14; the pre-fix accounting
		// charged the FOJ again on pass 1 for 18.
		if got := probesOf(t, store, res); got != 14 {
			t.Errorf("%s: probes = %d, want 14 (FOJ charged once)", exec.name, got)
		}
		if res.SurvivingRows["A"] != 2 || res.SurvivingRows["C"] != 2 {
			t.Errorf("%s: survivors A=%d C=%d, want 2/2",
				exec.name, res.SurvivingRows["A"], res.SurvivingRows["C"])
		}
	}
}

// TestMissingJoinColumnKeepsRows is the regression test for semanticReduce
// over-pruning: a join column absent from one side's schema yields no key
// set, and reducing the other side by that nil set used to empty its rows.
// The edge must be skipped in both directions.
func TestMissingJoinColumnKeepsRows(t *testing.T) {
	ds := starDS(t, 100, 10000, 12)
	store, design := installBaseline(t, ds, 500)

	cases := []struct {
		name              string
		leftCol, rightCol string
		wantDim, wantFact int
	}{
		// dim has no "nope": the nil dim key set must not empty fact.
		{"left-missing", "nope", "did", 10, 10000},
		// fact has no "nosuch": the nil fact key set must not empty dim.
		{"right-missing", "id", "nosuch", 10, 10000},
	}
	for _, c := range cases {
		q := workload.NewQuery("badcol-"+c.name,
			workload.TableRef{Table: "dim"},
			workload.TableRef{Table: "fact"},
		)
		q.AddJoin("dim", c.leftCol, "fact", c.rightCol)
		q.Filter("dim", predicate.NewComparison("id", predicate.Lt, value.Int(10)))
		for _, opts := range []Options{DefaultOptions(), CloudDWOptions()} {
			e := New(store, design, ds, opts)
			for _, exec := range []struct {
				name string
				run  func(*workload.Query) (*Result, error)
			}{{"kernel", e.Execute}, {"reference", e.ExecuteReference}} {
				res, err := exec.run(q)
				if err != nil {
					t.Fatal(err)
				}
				if res.SurvivingRows["dim"] != c.wantDim || res.SurvivingRows["fact"] != c.wantFact {
					t.Errorf("%s/%s: survivors dim=%d fact=%d, want %d/%d (edge must be a no-op)",
						c.name, exec.name, res.SurvivingRows["dim"], res.SurvivingRows["fact"],
						c.wantDim, c.wantFact)
				}
			}
		}
	}
}

// TestSortedKeysMixedKinds pins the kind-first total order: sets mixing
// non-comparable kinds must sort without panicking, in same-kind runs.
func TestSortedKeysMixedKinds(t *testing.T) {
	set := map[value.Value]struct{}{
		value.Int(5):       {},
		value.String("m"):  {},
		value.Float(2.5):   {},
		value.Int(1):       {},
		value.String("aa"): {},
	}
	keys := sortedKeys(set)
	if len(keys) != 5 {
		t.Fatalf("len = %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		ka, kb := keys[i-1].Kind(), keys[i].Kind()
		if ka > kb {
			t.Fatalf("kinds out of order at %d: %v before %v", i, keys[i-1], keys[i])
		}
		if ka == kb && keys[i].Less(keys[i-1]) {
			t.Fatalf("values out of order at %d: %v before %v", i, keys[i-1], keys[i])
		}
	}
}

// TestAnyKeyInIntervalMixedKinds pins the hardened probe: same-kind runs
// binary-search normally, non-comparable runs keep the block conservatively,
// and nothing panics.
func TestAnyKeyInIntervalMixedKinds(t *testing.T) {
	ivInt := func(lo, hi int64) predicate.Interval {
		return predicate.NewInterval(value.Int(lo), value.Int(hi), true, true)
	}
	mixed := sortedKeys(map[value.Value]struct{}{
		value.Int(1): {}, value.Int(5): {}, value.Float(2.5): {}, value.String("m"): {},
	})
	if !anyKeyInInterval(mixed, ivInt(4, 6)) {
		t.Error("int key 5 in [4,6] missed")
	}
	// All-numeric keys outside an int interval: provable prune still works.
	numeric := sortedKeys(map[value.Value]struct{}{
		value.Int(1): {}, value.Float(2.5): {},
	})
	if anyKeyInInterval(numeric, ivInt(10, 20)) {
		t.Error("numeric keys wrongly kept for disjoint [10,20]")
	}
	// String-bounded interval vs int keys: not comparable, keep.
	ivStr := predicate.NewInterval(value.String("a"), value.String("z"), true, true)
	if !anyKeyInInterval(sortedKeys(map[value.Value]struct{}{value.Int(1): {}}), ivStr) {
		t.Error("non-comparable probe must keep conservatively")
	}
	// The mixed set against the string interval: the string run decides.
	if !anyKeyInInterval(mixed, ivStr) {
		t.Error(`"m" in ["a","z"] missed`)
	}
}

// TestAnyIntKeyInInterval pins the primitive fast path to the generic probe:
// handled int/unbounded bounds agree with anyKeyInInterval, and non-int
// bounds hand off to the fallback.
func TestAnyIntKeyInInterval(t *testing.T) {
	keys := []int64{5, 10, 20}
	boxed := []value.Value{value.Int(5), value.Int(10), value.Int(20)}
	ivs := []predicate.Interval{
		predicate.NewInterval(value.Int(8), value.Int(12), true, true),
		predicate.NewInterval(value.Int(11), value.Int(19), true, true),
		predicate.NewInterval(value.Int(10), value.Int(20), false, false),
		predicate.NewInterval(value.Int(20), value.Null, false, true),
		predicate.NewInterval(value.Null, value.Int(5), true, false),
		predicate.Unbounded(),
		{Empty: true},
	}
	for _, iv := range ivs {
		hit, handled := anyIntKeyInInterval(keys, iv)
		if !handled {
			t.Errorf("%v: int bounds must be handled", iv)
			continue
		}
		if want := anyKeyInInterval(boxed, iv); hit != want {
			t.Errorf("%v: fast path = %v, generic = %v", iv, hit, want)
		}
	}
	if hit, handled := anyIntKeyInInterval(nil, predicate.Unbounded()); hit || !handled {
		t.Errorf("empty keys: hit=%v handled=%v, want false/true", hit, handled)
	}
	// Non-int bounds defer to the generic (boxed) probe.
	for _, iv := range []predicate.Interval{
		predicate.NewInterval(value.Float(1.5), value.Float(9.5), true, true),
		predicate.NewInterval(value.String("a"), value.String("z"), true, true),
	} {
		if _, handled := anyIntKeyInInterval(keys, iv); handled {
			t.Errorf("%v: non-int bounds must not be handled by the fast path", iv)
		}
	}
}

// TestKernelMatchesReferenceSecondaryIndex pins the kernel to the scalar
// path under secondary-index pruning, where key sets flow into KeyIndex
// lookups instead of zone probes.
func TestKernelMatchesReferenceSecondaryIndex(t *testing.T) {
	ds := starDS(t, 1000, 20000, 13)
	d, err := layout.SortKeyDesign(ds, layout.SortKeys{"fact": "v", "dim": "id"}, 500)
	if err != nil {
		t.Fatal(err)
	}
	store := block.NewStore(block.DefaultCostModel())
	if _, err := d.Install(store, nil, 0); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.SecondaryIndexes = map[string]string{"fact": "did"}
	e := New(store, d, ds, opts)

	q := workload.NewQuery("si",
		workload.TableRef{Table: "dim"},
		workload.TableRef{Table: "fact"},
	)
	q.AddJoin("dim", "id", "fact", "did")
	q.Filter("dim", predicate.NewComparison("id", predicate.Eq, value.Int(500)))

	got, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.ExecuteReference(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kernel result diverges under SI:\n got %+v\nwant %+v", got, want)
	}
}
