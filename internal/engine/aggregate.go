package engine

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"mto/internal/bitmap"
	"mto/internal/block"
	"mto/internal/relation"
	"mto/internal/value"
	"mto/internal/workload"
)

// This file computes query aggregates (workload.Query.Aggregates) over the
// per-alias surviving row sets, after all filters and join semantics. Two
// folds exist and must agree byte for byte:
//
//   - the compressed fold: when the backend is a block.CompressedAggregator
//     (the colstore segment store), supported aggregates fold per candidate
//     block directly over encoded pages — no column decode, no survivor
//     materialization. Integer SUM/COUNT/MIN/MAX are order-independent, so
//     the per-block accumulation is exact regardless of block order;
//   - the materialized fold: everything else (the in-memory backend, the
//     reference path, aggregates the compressed compiler declined) iterates
//     the survivor bitmap in ascending global row order over the base
//     table's decoded vectors.
//
// Floats are never folded compressed: float addition is order-sensitive,
// and the one float accumulation order that defines the result is the
// materialized fold's ascending row order. Both execution paths use the
// same fold code, so Results stay byte-identical across backends, scan
// modes, and replay parallelism (parallel replay folds per query inside
// Execute; RunWorkload only collects whole Results in input order).

// AggValue is one computed aggregate in a Result: the requested spec and
// its SQL-semantics value — Null for SUM/MIN/MAX/AVG over an empty (or
// all-null) survivor set, a count of 0 for COUNT. For grouped queries
// (Query.GroupBy set) Value is Null and Groups carries the per-group
// values instead, sorted by group key: the NULL group first, then
// ascending values — a deterministic order shared by every fold path.
type AggValue struct {
	Spec    workload.Aggregate
	Value   value.Value
	GroupBy workload.GroupBy // zero for flat aggregates
	Groups  []GroupValue     // per-group values, NULL group first then ascending keys
}

// String renders "sum(lo.lo_revenue)=4099853" for flat aggregates and
// "sum(l.l_quantity) by l.l_returnflag={"A":37734107, "N":74476040}" for
// grouped ones. Group keys and values render via value.Value.String —
// NULL unadorned, strings quoted — so the serialization is unambiguous
// and deterministic (groups are already sorted by key).
func (av AggValue) String() string {
	if av.GroupBy.IsZero() {
		return fmt.Sprintf("%s=%s", av.Spec, av.Value)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s by %s={", av.Spec, av.GroupBy)
	for i, g := range av.Groups {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(g.Key.String())
		sb.WriteByte(':')
		sb.WriteString(g.Value.String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// aggColumnKind resolves spec's column in the alias's base table and
// validates the operator/kind fit. ci is -1 for COUNT(*). Both execution
// paths route through this, so unsupported shapes fail identically.
func aggColumnKind(tbl *relation.Table, spec workload.Aggregate) (ci int, kind value.Kind, err error) {
	if spec.Column == "" {
		// Validate() already requires Op == AggCount for column-less
		// aggregates.
		return -1, value.KindNull, nil
	}
	ci, ok := tbl.Schema().ColumnIndex(spec.Column)
	if !ok {
		return 0, 0, fmt.Errorf("engine: aggregate %s: table %q has no column %q",
			spec, tbl.Schema().Table(), spec.Column)
	}
	kind = tbl.Schema().Column(ci).Type
	switch spec.Op {
	case workload.AggSum, workload.AggAvg:
		if kind != value.KindInt && kind != value.KindFloat {
			return 0, 0, fmt.Errorf("engine: aggregate %s: %s over %s column", spec, spec.Op, kind)
		}
	}
	return ci, kind, nil
}

// foldAggregate computes spec over the rows of tbl set in the survivor
// bitmap — the materialized fold. Iteration is ascending global row order,
// which is the defining accumulation order for float results. Integer sums
// use checked addition and error out deterministically on overflow.
func foldAggregate(tbl *relation.Table, set bitmap.Dense, spec workload.Aggregate) (value.Value, error) {
	ci, kind, err := aggColumnKind(tbl, spec)
	if err != nil {
		return value.Null, err
	}
	if ci < 0 { // COUNT(*): surviving rows, nulls included
		return value.Int(int64(set.Count())), nil
	}
	nulls := tbl.Nulls(ci)
	var st block.AggState
	switch kind {
	case value.KindInt:
		ints := tbl.Ints(ci)
		for w := range set {
			word := set[w]
			for word != 0 {
				r := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				if nulls != nil && nulls[r] {
					continue
				}
				v := ints[r]
				if spec.Op == workload.AggSum || spec.Op == workload.AggAvg {
					if (v > 0 && st.Sum > math.MaxInt64-v) || (v < 0 && st.Sum < math.MinInt64-v) {
						return value.Null, fmt.Errorf("engine: aggregate %s: int64 sum overflow", spec)
					}
				}
				st.FoldInt(v)
			}
		}
		return finalizeAgg(spec, kind, &st), nil
	case value.KindFloat:
		floats := tbl.Floats(ci)
		var fsum, fmin, fmax float64
		for w := range set {
			word := set[w]
			for word != 0 {
				r := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				if nulls != nil && nulls[r] {
					continue
				}
				v := floats[r]
				fsum += v
				if !st.Seen || v < fmin {
					fmin = v
				}
				if !st.Seen || v > fmax {
					fmax = v
				}
				st.Seen = true
				st.Count++
			}
		}
		return finalizeFloatAgg(spec, &st, fsum, fmin, fmax), nil
	default: // strings
		strs := tbl.Strings(ci)
		for w := range set {
			word := set[w]
			for word != 0 {
				r := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				if nulls != nil && nulls[r] {
					continue
				}
				st.FoldStr(strs[r])
			}
		}
		return finalizeAgg(spec, kind, &st), nil
	}
}

// finalizeFloatAgg turns a float fold's state and scratch into the
// aggregate's SQL value. The flat and grouped materialized folds both
// land here, so float empty-set and AVG-division rules cannot diverge.
func finalizeFloatAgg(spec workload.Aggregate, st *block.AggState, fsum, fmin, fmax float64) value.Value {
	switch spec.Op {
	case workload.AggCount:
		return value.Int(st.Count)
	case workload.AggMin:
		if !st.Seen {
			return value.Null
		}
		return value.Float(fmin)
	case workload.AggMax:
		if !st.Seen {
			return value.Null
		}
		return value.Float(fmax)
	case workload.AggAvg:
		if st.Count == 0 {
			return value.Null
		}
		return value.Float(fsum / float64(st.Count))
	default: // AggSum
		if st.Count == 0 {
			return value.Null
		}
		return value.Float(fsum)
	}
}

// finalizeAgg turns a fold state into the aggregate's SQL value. The
// compressed and materialized int/string folds both land here, so the two
// paths cannot diverge in the empty-set, all-null, or AVG-division rules.
func finalizeAgg(spec workload.Aggregate, kind value.Kind, st *block.AggState) value.Value {
	switch spec.Op {
	case workload.AggCount:
		if spec.Column == "" {
			return value.Int(st.Rows)
		}
		return value.Int(st.Count)
	case workload.AggMin:
		if !st.Seen {
			return value.Null
		}
		if kind == value.KindString {
			return value.String(st.MinS)
		}
		return value.Int(st.MinI)
	case workload.AggMax:
		if !st.Seen {
			return value.Null
		}
		if kind == value.KindString {
			return value.String(st.MaxS)
		}
		return value.Int(st.MaxI)
	case workload.AggAvg:
		if st.Count == 0 {
			return value.Null
		}
		return value.Float(float64(st.Sum) / float64(st.Count))
	default: // AggSum
		if st.Count == 0 {
			return value.Null
		}
		return value.Int(st.Sum)
	}
}

// foldAggregatesKernel computes q's aggregates for the vectorized path:
// compressed per-block folds over each alias's candidate blocks where the
// backend supports the shape, the materialized bitmap fold for the rest.
func (e *Engine) foldAggregatesKernel(q *workload.Query, vecAliases map[string]*vecAlias,
	tables map[string]*tableState) ([]AggValue, error) {

	if len(q.Aggregates) == 0 {
		return nil, nil
	}
	// Validate every aggregate up front so unsupported shapes fail before
	// any fold, identically to the reference path.
	for _, spec := range q.Aggregates {
		a := vecAliases[spec.Alias]
		tbl := e.ds.Table(a.table)
		if _, _, err := aggColumnKind(tbl, spec); err != nil {
			return nil, err
		}
	}
	if !q.GroupBy.IsZero() {
		return e.foldGroupedKernel(q, vecAliases, tables)
	}
	out := make([]AggValue, len(q.Aggregates))
	done := make([]bool, len(q.Aggregates))
	if !e.opts.DecodeScan {
		if ca, ok := e.store.(block.CompressedAggregator); ok {
			if err := e.foldCompressed(q, vecAliases, tables, ca, out, done); err != nil {
				return nil, err
			}
		}
	}
	for i, spec := range q.Aggregates {
		if done[i] {
			continue
		}
		a := vecAliases[spec.Alias]
		v, err := foldAggregate(e.ds.Table(a.table), a.set, spec)
		if err != nil {
			return nil, err
		}
		out[i] = AggValue{Spec: spec, Value: v}
	}
	return out, nil
}

// foldCompressed runs the per-alias compressed folds: aggregates are
// grouped by alias (first-seen order), compiled once per (query, alias),
// and each supported one folds over the alias table's candidate blocks —
// exactly the blocks the scan read, which cover every set survivor bit.
func (e *Engine) foldCompressed(q *workload.Query, vecAliases map[string]*vecAlias,
	tables map[string]*tableState, ca block.CompressedAggregator, out []AggValue, done []bool) error {

	var aliasOrder []string
	byAlias := map[string][]int{}
	for i, spec := range q.Aggregates {
		if _, ok := byAlias[spec.Alias]; !ok {
			aliasOrder = append(aliasOrder, spec.Alias)
		}
		byAlias[spec.Alias] = append(byAlias[spec.Alias], i)
	}
	for _, alias := range aliasOrder {
		idxs := byAlias[alias]
		a := vecAliases[alias]
		ts := tables[a.table]
		specs := make([]workload.Aggregate, len(idxs))
		for k, i := range idxs {
			specs[k] = q.Aggregates[i]
		}
		agg := ca.CompileAggregate(a.table, specs)
		if agg == nil {
			continue
		}
		supported := agg.Supported()
		states := make([]*block.AggState, len(idxs))
		any := false
		for k := range idxs {
			if supported[k] {
				states[k] = &block.AggState{}
				any = true
			}
		}
		if !any {
			continue
		}
		for _, id := range ts.candidates {
			if err := agg.FoldBlock(id, a.set, states); err != nil {
				return err
			}
		}
		tbl := e.ds.Table(a.table)
		for k, i := range idxs {
			if !supported[k] {
				continue
			}
			_, kind, err := aggColumnKind(tbl, specs[k])
			if err != nil {
				return err
			}
			out[i] = AggValue{Spec: specs[k], Value: finalizeAgg(specs[k], kind, states[k])}
			done[i] = true
		}
	}
	return nil
}

// foldAggregatesReference computes q's aggregates for the scalar reference
// path: each alias's surviving row list becomes a bitmap so the shared
// materialized fold sees the exact accumulation order the kernel path uses.
func (e *Engine) foldAggregatesReference(q *workload.Query, aliasStates map[string]*aliasState) ([]AggValue, error) {
	if len(q.Aggregates) == 0 {
		return nil, nil
	}
	if !q.GroupBy.IsZero() {
		// Validate() pins every aggregate to the grouping alias, so one
		// survivor set covers the whole query.
		as := aliasStates[q.GroupBy.Alias]
		tbl := e.ds.Table(as.table)
		set := bitmap.NewDense(tbl.NumRows())
		for _, r := range as.rows {
			set.Set(int(r))
		}
		return e.foldGroupedMaterialized(as.table, tbl, set, q.GroupBy, q.Aggregates)
	}
	out := make([]AggValue, len(q.Aggregates))
	sets := map[string]bitmap.Dense{}
	for i, spec := range q.Aggregates {
		as := aliasStates[spec.Alias]
		tbl := e.ds.Table(as.table)
		set, ok := sets[spec.Alias]
		if !ok {
			set = bitmap.NewDense(tbl.NumRows())
			for _, r := range as.rows {
				set.Set(int(r))
			}
			sets[spec.Alias] = set
		}
		v, err := foldAggregate(tbl, set, spec)
		if err != nil {
			return nil, err
		}
		out[i] = AggValue{Spec: spec, Value: v}
	}
	return out, nil
}
