package engine

// ReorderAggregates returns cached's values rearranged to match the
// declaration order of specs, or false when the two sets do not describe
// the same aggregates. A result cache keyed on workload.Query.Normalize
// needs this on a hit: the key sorts aggregate specs (declaration order
// cannot change any value), but Result.Aggregates is contractually in the
// requesting query's declaration order, so the cache restores that order
// before handing the copy out. Duplicate specs pair up positionally —
// their values are equal by construction, so any pairing is correct.
//
// The returned slice shares the AggValue structs' Groups slices with
// cached; callers that must not alias the cache deep-copy first.
func ReorderAggregates(cached []AggValue, specs []string) ([]AggValue, bool) {
	if len(cached) != len(specs) {
		return nil, false
	}
	if len(cached) == 0 {
		return nil, true
	}
	out := make([]AggValue, len(specs))
	used := make([]bool, len(cached))
	for i, want := range specs {
		found := false
		for j := range cached {
			if !used[j] && cached[j].Spec.String() == want {
				out[i] = cached[j]
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}
