package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"mto/internal/block"
	"mto/internal/layout"
	"mto/internal/predicate"
	"mto/internal/relation"
	"mto/internal/value"
	"mto/internal/workload"
)

// snowflakeDS builds dim1(id unique, attr) + dim2(id unique, grp) +
// fact(fid, did1, did2, v): a schema whose queries join the fact to both
// dimensions, exercising multi-edge runtime pruning.
func snowflakeDS(t testing.TB, dims, factRows int, seed int64) *relation.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := relation.NewDataset()
	for _, name := range []string{"dim1", "dim2"} {
		attr := "attr"
		if name == "dim2" {
			attr = "grp"
		}
		d := relation.NewTable(relation.MustSchema(name,
			relation.Column{Name: "id", Type: value.KindInt, Unique: true},
			relation.Column{Name: attr, Type: value.KindInt},
		))
		for i := 0; i < dims; i++ {
			d.MustAppendRow(value.Int(int64(i)), value.Int(int64(i%7)))
		}
		ds.MustAddTable(d)
	}
	fact := relation.NewTable(relation.MustSchema("fact",
		relation.Column{Name: "fid", Type: value.KindInt, Unique: true},
		relation.Column{Name: "did1", Type: value.KindInt},
		relation.Column{Name: "did2", Type: value.KindInt},
		relation.Column{Name: "v", Type: value.KindInt},
	))
	for i := 0; i < factRows; i++ {
		fact.MustAppendRow(
			value.Int(int64(i)),
			value.Int(int64(rng.Intn(dims))),
			value.Int(int64(rng.Intn(dims))),
			value.Int(int64(rng.Intn(1000))),
		)
	}
	ds.MustAddTable(fact)
	return ds
}

// snowflakeWorkload builds n multi-join queries with varying filters.
func snowflakeWorkload(n int) []*workload.Query {
	out := make([]*workload.Query, 0, n)
	for i := 0; i < n; i++ {
		q := workload.NewQuery(fmt.Sprintf("q%d", i),
			workload.TableRef{Table: "dim1"},
			workload.TableRef{Table: "dim2"},
			workload.TableRef{Table: "fact"},
		)
		q.AddJoin("dim1", "id", "fact", "did1")
		q.AddJoin("dim2", "id", "fact", "did2")
		q.Filter("dim1", predicate.NewComparison("attr", predicate.Eq, value.Int(int64(i%7))))
		q.Filter("dim2", predicate.NewComparison("grp", predicate.Lt, value.Int(int64(1+i%5))))
		q.Filter("fact", predicate.NewComparison("v", predicate.Lt, value.Int(int64(100+50*(i%10)))))
		out = append(out, q)
	}
	return out
}

func installSnowflake(t testing.TB, ds *relation.Dataset, blockSize int) (*block.Store, *layout.Design) {
	t.Helper()
	d, err := layout.SortKeyDesign(ds, layout.SortKeys{
		"fact": "did1", "dim1": "id", "dim2": "id",
	}, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	store := block.NewStore(block.DefaultCostModel())
	if _, err := d.Install(store, nil, 0); err != nil {
		t.Fatal(err)
	}
	return store, d
}

// parallelEngineOptions turns on every execution-time feature so the
// parallel run exercises the keyIdx/blockOf caches and diP pruning.
func parallelEngineOptions() Options {
	opts := CloudDWOptions()
	opts.DiPs = true
	opts.SecondaryIndexes = map[string]string{"fact": "did2"}
	return opts
}

// TestRunWorkloadMatchesSequential replays the same multi-join workload
// sequentially and at parallelism 8 (under -race this doubles as the
// engine's concurrency-safety test) and requires identical per-query
// results, aggregate Seconds, and Store.Stats() totals.
func TestRunWorkloadMatchesSequential(t *testing.T) {
	ds := snowflakeDS(t, 200, 20000, 11)
	queries := snowflakeWorkload(32)

	// Fresh store per run so the metering totals are comparable.
	seqStore, seqDesign := installSnowflake(t, ds, 500)
	seqBase := seqStore.Stats()
	seq, err := RunWorkload(New(seqStore, seqDesign, ds, parallelEngineOptions()),
		queries, RunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	parStore, parDesign := installSnowflake(t, ds, 500)
	parBase := parStore.Stats()
	par, err := RunWorkload(New(parStore, parDesign, ds, parallelEngineOptions()),
		queries, RunOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}

	if len(seq.Results) != len(queries) || len(par.Results) != len(queries) {
		t.Fatalf("result counts: seq=%d par=%d want %d", len(seq.Results), len(par.Results), len(queries))
	}
	for i, q := range queries {
		s, p := seq.Results[i], par.Results[i]
		if s.Query != q.ID || p.Query != q.ID {
			t.Fatalf("result %d out of order: seq=%q par=%q want %q", i, s.Query, p.Query, q.ID)
		}
		if s.BlocksRead != p.BlocksRead || s.TotalBlocks != p.TotalBlocks {
			t.Errorf("%s: blocks seq=%d/%d par=%d/%d", q.ID, s.BlocksRead, s.TotalBlocks, p.BlocksRead, p.TotalBlocks)
		}
		if s.Seconds != p.Seconds {
			t.Errorf("%s: seconds seq=%v par=%v", q.ID, s.Seconds, p.Seconds)
		}
		for alias, n := range s.SurvivingRows {
			if p.SurvivingRows[alias] != n {
				t.Errorf("%s: %s survivors seq=%d par=%d", q.ID, alias, n, p.SurvivingRows[alias])
			}
		}
	}
	if seq.Blocks != par.Blocks || seq.TotalBlocks != par.TotalBlocks {
		t.Errorf("workload blocks: seq=%d/%d par=%d/%d", seq.Blocks, seq.TotalBlocks, par.Blocks, par.TotalBlocks)
	}
	if seq.Seconds != par.Seconds {
		t.Errorf("workload seconds: seq=%v par=%v", seq.Seconds, par.Seconds)
	}
	if seq.Fraction != par.Fraction {
		t.Errorf("workload fraction: seq=%v par=%v", seq.Fraction, par.Fraction)
	}
	for table, st := range seq.PerTable {
		pt := par.PerTable[table]
		if pt == nil || *st != *pt {
			t.Errorf("per-table totals for %s: seq=%+v par=%+v", table, st, pt)
		}
	}
	seqIO, parIO := seqStore.Stats().Sub(seqBase), parStore.Stats().Sub(parBase)
	if seqIO != parIO {
		t.Errorf("store stats: seq=%+v par=%+v", seqIO, parIO)
	}
}

// TestRunWorkloadSharedStore runs sequential and parallel replays against
// the SAME engine and store, checking that cumulative metering is exact
// (every block read is counted once) regardless of interleaving.
func TestRunWorkloadSharedStore(t *testing.T) {
	ds := snowflakeDS(t, 100, 8000, 12)
	store, design := installSnowflake(t, ds, 400)
	eng := New(store, design, ds, parallelEngineOptions())
	queries := snowflakeWorkload(16)

	before := store.Stats()
	seq, err := RunWorkload(eng, queries, RunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	afterSeq := store.Stats().Sub(before)
	par, err := RunWorkload(eng, queries, RunOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	afterPar := store.Stats().Sub(before).Sub(afterSeq)
	if afterSeq != afterPar {
		t.Errorf("metering drifted between replays: seq=%+v par=%+v", afterSeq, afterPar)
	}
	if int64(seq.Blocks) != afterSeq.BlocksRead || int64(par.Blocks) != afterPar.BlocksRead {
		t.Errorf("aggregate blocks (%d, %d) disagree with store metering (%+v, %+v)",
			seq.Blocks, par.Blocks, afterSeq, afterPar)
	}
}

// TestRunWorkloadErrors checks that a failing query aborts the run with
// the first error in input order, under both execution modes.
func TestRunWorkloadErrors(t *testing.T) {
	ds := snowflakeDS(t, 50, 2000, 13)
	store, design := installSnowflake(t, ds, 400)
	eng := New(store, design, ds, DefaultOptions())

	queries := snowflakeWorkload(8)
	queries[3] = workload.NewQuery("bad3", workload.TableRef{Table: "nope"})
	queries[6] = workload.NewQuery("bad6", workload.TableRef{Table: "nope"})
	for _, par := range []int{1, 4} {
		if _, err := RunWorkload(eng, queries, RunOptions{Parallelism: par}); err == nil {
			t.Errorf("parallelism %d: error not reported", par)
		}
	}
	// Empty workloads are fine.
	res, err := RunWorkload(eng, nil, RunOptions{Parallelism: 4})
	if err != nil || len(res.Results) != 0 || res.Seconds != 0 {
		t.Errorf("empty workload: res=%+v err=%v", res, err)
	}
}

// BenchmarkRunWorkload measures full-workload replay wall-clock at several
// parallelism levels; on a multi-core runner parallelism 4 should beat
// sequential by well over 2×.
func BenchmarkRunWorkload(b *testing.B) {
	ds := snowflakeDS(b, 300, 60000, 14)
	store, design := installSnowflake(b, ds, 500)
	queries := snowflakeWorkload(64)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			eng := New(store, design, ds, parallelEngineOptions())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunWorkload(eng, queries, RunOptions{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
