package engine

import (
	"sync"

	"mto/internal/bitmap"
)

// The scan kernel builds one dense row bitmap per (alias, table) plus a
// block-membership bitmap on every query; for wide fact tables those are
// the kernel path's dominant steady-state allocations. They are pooled
// here and wiped on reuse, so a replayed workload allocates each mask
// shape once per worker instead of once per query.

// denseBuf is one pooled dense bitmap's backing storage.
type denseBuf struct{ w []uint64 }

var densePool = sync.Pool{New: func() any { return new(denseBuf) }}

// grabDense returns a zeroed n-bit dense bitmap backed by pooled storage.
// Release it with putDense once nothing aliases the bitmap.
func grabDense(n int) *denseBuf {
	db := densePool.Get().(*denseBuf)
	nw := (n + 63) >> 6
	if cap(db.w) < nw {
		db.w = make([]uint64, nw)
		return db
	}
	db.w = db.w[:nw]
	for i := range db.w {
		db.w[i] = 0
	}
	return db
}

// dense views the buffer as a bitmap.Dense. The view is invalid after
// putDense.
func (db *denseBuf) dense() bitmap.Dense { return bitmap.Dense(db.w) }

// putDense recycles the buffer.
func putDense(db *denseBuf) { densePool.Put(db) }
