package engine

import (
	"sort"

	"mto/internal/predicate"
	"mto/internal/relation"
	"mto/internal/value"
	"mto/internal/workload"
)

// prunableDirections reports, for a join edge, whether blocks/rows of the
// right side can be pruned using left-side information (and vice versa)
// without changing the query result. The directions coincide with the
// predicate-induction rules of §4.1.1: a side is prunable exactly when its
// unmatched rows are irrelevant to the result.
func prunableDirections(t workload.JoinType) (rightByLeft, leftByRight bool) {
	return t.CanInduceLeftToRight(), t.CanInduceRightToLeft()
}

// keysOf collects the distinct non-null join-key values of the alias's
// surviving rows in the named column.
func keysOf(tbl *relation.Table, rows []int32, col string) map[value.Value]struct{} {
	ci, ok := tbl.Schema().ColumnIndex(col)
	if !ok {
		return nil
	}
	out := make(map[value.Value]struct{}, len(rows))
	for _, r := range rows {
		v := tbl.Value(int(r), ci)
		if !v.IsNull() {
			out[v] = struct{}{}
		}
	}
	return out
}

// sortedKeys returns the key set as a sorted slice for zone-interval
// probes: kind-first, then value order. Grouping by kind keeps the slice
// totally ordered even when the set mixes non-comparable kinds (value
// comparisons panic across, say, int and string), so anyKeyInInterval can
// binary-search each same-kind run independently.
func sortedKeys(set map[value.Value]struct{}) []value.Value {
	out := make([]value.Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if ki, kj := out[i].Kind(), out[j].Kind(); ki != kj {
			return ki < kj
		}
		return out[i].Less(out[j])
	})
	return out
}

// anyKeyInInterval reports whether some key falls inside iv. keys must be
// in sortedKeys order (kind-first). Keys of a kind not comparable with
// iv's bounds cannot be proven outside the interval, so they count as hits
// — pruning must stay conservative rather than panic on mixed-kind data.
func anyKeyInInterval(keys []value.Value, iv predicate.Interval) bool {
	if iv.Empty || len(keys) == 0 {
		return false
	}
	for start := 0; start < len(keys); {
		end := start + 1
		for end < len(keys) && keys[end].Kind() == keys[start].Kind() {
			end++
		}
		if groupInInterval(keys[start:end], iv) {
			return true
		}
		start = end
	}
	return false
}

// groupInInterval probes one same-kind run of sorted keys against iv.
func groupInInterval(keys []value.Value, iv predicate.Interval) bool {
	if (!iv.Min.IsNull() && !keys[0].Comparable(iv.Min)) ||
		(!iv.Max.IsNull() && !keys[0].Comparable(iv.Max)) {
		// Non-comparable bounds cannot prove these keys miss: keep.
		return true
	}
	// Binary search for the first key ≥ iv.Min (or index 0 if unbounded).
	lo := 0
	if !iv.Min.IsNull() {
		lo = sort.Search(len(keys), func(i int) bool {
			cmp := keys[i].Compare(iv.Min)
			return cmp > 0 || (cmp == 0 && iv.MinInc)
		})
	}
	if lo >= len(keys) {
		return false
	}
	return iv.Contains(keys[lo])
}

// anyIntKeyInInterval is anyKeyInInterval specialized to sorted raw int64
// keys — the common case for join columns, probed without boxing. handled
// is false when a bound has a non-int kind; callers then fall back to the
// generic boxed probe, which resolves numeric cross-kind comparisons and
// conservative keeps exactly like the scalar path.
func anyIntKeyInInterval(keys []int64, iv predicate.Interval) (hit, handled bool) {
	if iv.Empty {
		return false, true
	}
	if (!iv.Min.IsNull() && iv.Min.Kind() != value.KindInt) ||
		(!iv.Max.IsNull() && iv.Max.Kind() != value.KindInt) {
		return false, false
	}
	if len(keys) == 0 {
		return false, true
	}
	lo := 0
	if !iv.Min.IsNull() {
		min := iv.Min.Int()
		lo = sort.Search(len(keys), func(i int) bool {
			return keys[i] > min || (keys[i] == min && iv.MinInc)
		})
	}
	if lo >= len(keys) {
		return false, true
	}
	if iv.Max.IsNull() {
		return true, true
	}
	max := iv.Max.Int()
	return keys[lo] < max || (keys[lo] == max && iv.MaxInc), true
}

// tableHasColumn reports whether t's schema holds col.
func tableHasColumn(t *relation.Table, col string) bool {
	_, ok := t.Schema().ColumnIndex(col)
	return ok
}

// runtimeBlockPrune applies semi-join reduction at the block level before
// ts is read: for every join edge connecting ts to an already-materialized
// table (in a prunable direction), the materialized side's exact keys prune
// ts's candidate blocks whose join-column zone interval contains no key.
// Returns the number of reducers built (each costs setup time).
func (e *Engine) runtimeBlockPrune(q *workload.Query, ts *tableState,
	aliases map[string]*aliasState, tables map[string]*tableState) int {

	reducers := 0
	for _, j := range q.Joins {
		var otherAlias, myCol, otherCol string
		rByL, lByR := prunableDirections(j.Type)
		switch {
		case aliasOnTable(q, j.Right, ts.table) && rByL:
			otherAlias, myCol, otherCol = j.Left, j.RightColumn, j.LeftColumn
		case aliasOnTable(q, j.Left, ts.table) && lByR:
			otherAlias, myCol, otherCol = j.Right, j.LeftColumn, j.RightColumn
		default:
			continue
		}
		other := aliases[otherAlias]
		otherTS := tables[other.table]
		if otherTS == nil || !otherTS.read || other.table == ts.table {
			continue
		}
		otherTbl := e.ds.Table(other.table)
		if !tableHasColumn(otherTbl, otherCol) {
			// The join column is missing from the materialized side's
			// schema: there are no keys to reduce with. Skip the edge —
			// treating the nil key set as "no keys survive" would wrongly
			// prune every candidate block.
			continue
		}
		if e.opts.SecondaryIndexes[ts.table] == myCol {
			if e.secondaryIndexPrune(ts, myCol, keysOf(otherTbl, other.rows, otherCol)) {
				reducers++
			}
			continue
		}
		if !e.opts.SemiJoinReduction {
			// SI configured for a different column only: no reducer is
			// built, so no setup time is charged.
			continue
		}
		keys := sortedKeys(keysOf(otherTbl, other.rows, otherCol))
		reducers++
		zones := e.store.Zones(ts.table)
		kept := ts.candidates[:0]
		for _, id := range ts.candidates {
			iv := zones[id].Column(myCol)
			if anyKeyInInterval(keys, iv) {
				kept = append(kept, id)
			}
		}
		ts.candidates = kept
	}
	return reducers
}

// keyIndexFor returns the table.col key index, building and caching it on
// first use. nil means the column cannot be indexed; the failure is cached
// too, so unindexable columns are not retried on every query.
func (e *Engine) keyIndexFor(table, col string) *relation.KeyIndex {
	cacheKey := table + "." + col
	e.mu.Lock()
	defer e.mu.Unlock()
	if ki, ok := e.keyIdx[cacheKey]; ok {
		return ki
	}
	ki, err := relation.BuildKeyIndex(e.ds.Table(table), col)
	if err != nil {
		ki = nil
	}
	e.keyIdx[cacheKey] = ki
	return ki
}

// blockOfFor returns the table's row → block ID mapping, building and
// caching it on first use. The mapping is an auxiliary-index read served
// by the backend (from the segment's row-ID pages, for the disk backend);
// nil means the backend could not produce it, and secondary-index pruning
// degrades to not pruning.
func (e *Engine) blockOfFor(table string) []int32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.blockOf[table]; ok {
		return m
	}
	m, err := e.store.RowToBlock(table)
	if err != nil {
		m = nil
	}
	e.blockOf[table] = m
	return m
}

// secondaryIndexPrune keeps only candidate blocks that physically contain a
// row whose indexed column matches one of the keys. Unlike zone-interval
// pruning, it works without any clustering of the join column. Reports
// whether an index probe ran (false for unindexable column types, where no
// reducer is built and nothing is pruned).
func (e *Engine) secondaryIndexPrune(ts *tableState, col string, keys map[value.Value]struct{}) bool {
	ki := e.keyIndexFor(ts.table, col)
	if ki == nil {
		return false
	}
	blockOf := e.blockOfFor(ts.table)
	if blockOf == nil {
		return false
	}
	needed := map[int32]bool{}
	for k := range keys {
		for _, r := range ki.Lookup(k) {
			needed[blockOf[r]] = true
		}
	}
	kept := ts.candidates[:0]
	for _, id := range ts.candidates {
		if needed[int32(id)] {
			kept = append(kept, id)
		}
	}
	ts.candidates = kept
	return true
}

func aliasOnTable(q *workload.Query, alias, table string) bool {
	return q.BaseTable(alias) == table
}

// applyDiPs prunes candidate blocks at plan time using data-induced
// predicates [22]: the zone intervals of one side's candidate blocks on the
// join column are merged into a range set of at most RangeSetSize ranges
// and pushed to the other side, whose blocks are dropped when their join
// column cannot intersect any range. Passes repeat until a fixpoint (or the
// pass cap) since pruning one table can enable pruning another.
func (e *Engine) applyDiPs(q *workload.Query, tables map[string]*tableState) {
	for pass := 0; pass < e.opts.MaxReductionPasses; pass++ {
		changed := false
		for _, j := range q.Joins {
			rByL, lByR := prunableDirections(j.Type)
			if rByL && e.dipPrune(q, tables, j.Left, j.LeftColumn, j.Right, j.RightColumn) {
				changed = true
			}
			if lByR && e.dipPrune(q, tables, j.Right, j.RightColumn, j.Left, j.LeftColumn) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// dipPrune pushes a range set from the source alias's table to the target
// alias's table; reports whether any block was pruned.
func (e *Engine) dipPrune(q *workload.Query, tables map[string]*tableState,
	srcAlias, srcCol, dstAlias, dstCol string) bool {

	src := tables[q.BaseTable(srcAlias)]
	dst := tables[q.BaseTable(dstAlias)]
	if src == nil || dst == nil || src.table == dst.table {
		return false
	}
	srcZones := e.store.Zones(src.table)
	var intervals []predicate.Interval
	for _, id := range src.candidates {
		iv := srcZones[id].Column(srcCol)
		if !iv.Empty {
			intervals = append(intervals, iv)
		}
	}
	ranges := mergeRanges(intervals, e.opts.RangeSetSize)
	if ranges == nil {
		// No candidate source blocks: the diP is empty and every target
		// block is prunable (for inner-style edges the join yields
		// nothing from unmatched rows).
		if len(dst.candidates) == 0 {
			return false
		}
		dst.candidates = dst.candidates[:0]
		return true
	}
	dstZones := e.store.Zones(dst.table)
	kept := dst.candidates[:0]
	pruned := false
	for _, id := range dst.candidates {
		iv := dstZones[id].Column(dstCol)
		ok := false
		for _, r := range ranges {
			// Non-comparable bounds cannot prove disjointness: keep the
			// block rather than panic inside Intersect.
			if !boundsComparable(iv, r) || !iv.Intersect(r).Empty {
				ok = true
				break
			}
		}
		if ok {
			kept = append(kept, id)
		} else {
			pruned = true
		}
	}
	dst.candidates = kept
	return pruned
}

// mergeRanges unions the intervals and coalesces them into at most k
// ranges, merging the closest pairs first (approximated by sorting on Min
// and greedily merging smallest gaps).
func mergeRanges(intervals []predicate.Interval, k int) []predicate.Interval {
	if len(intervals) == 0 {
		return nil
	}
	sort.Slice(intervals, func(i, j int) bool {
		a, b := intervals[i].Min, intervals[j].Min
		switch {
		case a.IsNull() && b.IsNull():
			return false
		case a.IsNull():
			return true
		case b.IsNull():
			return false
		case !a.Comparable(b):
			return a.Kind() < b.Kind()
		default:
			return a.Less(b)
		}
	})
	// First merge overlapping/touching intervals.
	merged := []predicate.Interval{intervals[0]}
	for _, iv := range intervals[1:] {
		last := &merged[len(merged)-1]
		if overlapsOrTouches(*last, iv) {
			*last = hull(*last, iv)
		} else {
			merged = append(merged, iv)
		}
	}
	// Then coalesce to k ranges by repeatedly merging adjacent pairs (they
	// are sorted, so adjacent pairs have the smallest gaps in rank order).
	for len(merged) > k {
		next := make([]predicate.Interval, 0, (len(merged)+1)/2)
		for i := 0; i < len(merged); i += 2 {
			if i+1 < len(merged) {
				next = append(next, hull(merged[i], merged[i+1]))
			} else {
				next = append(next, merged[i])
			}
		}
		merged = next
	}
	return merged
}

func touching(a, b predicate.Interval) bool {
	if a.Max.IsNull() || b.Min.IsNull() || !a.Max.Comparable(b.Min) {
		return false
	}
	return a.Max.Compare(b.Min) >= 0
}

// boundsComparable reports whether every pair of bounds across a and b can
// be ordered (Null bounds order against anything).
func boundsComparable(a, b predicate.Interval) bool {
	return a.Min.Comparable(b.Min) && a.Min.Comparable(b.Max) &&
		a.Max.Comparable(b.Min) && a.Max.Comparable(b.Max)
}

// overlapsOrTouches reports whether a and b can be unioned into one
// contiguous interval. Intervals with non-comparable bounds (mixed value
// kinds) are treated as disjoint here — Interval.Intersect would panic on
// them — and only merge, conservatively, in the coalesce phase via hull.
func overlapsOrTouches(a, b predicate.Interval) bool {
	if !boundsComparable(a, b) {
		return false
	}
	return !a.Intersect(b).Empty || touching(a, b)
}

// hull returns an interval covering both a and b. Non-comparable bounds
// (mixed value kinds) widen the merged side to unbounded: keeping either
// bound could exclude values the other interval covers, and a diP built
// from a too-narrow hull wrongly prunes blocks.
func hull(a, b predicate.Interval) predicate.Interval {
	out := a
	switch {
	case b.Min.IsNull():
		out.Min, out.MinInc = value.Null, true
	case out.Min.IsNull():
		// keep unbounded
	case !out.Min.Comparable(b.Min):
		out.Min, out.MinInc = value.Null, true
	case b.Min.Less(out.Min):
		out.Min, out.MinInc = b.Min, b.MinInc
	}
	switch {
	case b.Max.IsNull():
		out.Max, out.MaxInc = value.Null, true
	case out.Max.IsNull():
		// keep unbounded
	case !out.Max.Comparable(b.Max):
		out.Max, out.MaxInc = value.Null, true
	case out.Max.Less(b.Max):
		out.Max, out.MaxInc = b.Max, b.MaxInc
	}
	return out
}

// semanticReduce applies the query's join semantics to the filtered row
// sets, iterating to a fixpoint: inner joins reduce both sides to matching
// rows, one-sided outer joins reduce only the non-preserved side, semi
// joins reduce both sides to matching rows, and anti-semi joins keep the
// preserved side's rows without a match. Returns the number of tuple
// probes performed (for the cost model).
func (e *Engine) semanticReduce(q *workload.Query, aliases map[string]*aliasState) int {
	probes := 0
	for pass := 0; pass < e.opts.MaxReductionPasses; pass++ {
		changed := false
		for _, j := range q.Joins {
			l, r := aliases[j.Left], aliases[j.Right]
			lt, rt := e.ds.Table(l.table), e.ds.Table(r.table)
			if !tableHasColumn(lt, j.LeftColumn) || !tableHasColumn(rt, j.RightColumn) {
				// A missing join column yields no key set; reducing the
				// other side by the resulting nil set would wrongly drop
				// every row. Skip the edge — like runtimeBlockPrune,
				// there is nothing to reduce with.
				continue
			}
			switch j.Type {
			case workload.InnerJoin, workload.SemiJoin:
				lk := keysOf(lt, l.rows, j.LeftColumn)
				rk := keysOf(rt, r.rows, j.RightColumn)
				probes += len(l.rows) + len(r.rows)
				if reduceTo(l, lt, j.LeftColumn, rk, false) {
					changed = true
				}
				if reduceTo(r, rt, j.RightColumn, lk, false) {
					changed = true
				}
			case workload.LeftOuterJoin:
				lk := keysOf(lt, l.rows, j.LeftColumn)
				probes += len(r.rows)
				if reduceTo(r, rt, j.RightColumn, lk, false) {
					changed = true
				}
			case workload.RightOuterJoin:
				rk := keysOf(rt, r.rows, j.RightColumn)
				probes += len(l.rows)
				if reduceTo(l, lt, j.LeftColumn, rk, false) {
					changed = true
				}
			case workload.LeftAntiSemiJoin:
				rk := keysOf(rt, r.rows, j.RightColumn)
				probes += len(l.rows)
				if reduceTo(l, lt, j.LeftColumn, rk, true) {
					changed = true
				}
			case workload.RightAntiSemiJoin:
				lk := keysOf(lt, l.rows, j.LeftColumn)
				probes += len(r.rows)
				if reduceTo(r, rt, j.RightColumn, lk, true) {
					changed = true
				}
			case workload.FullOuterJoin:
				// Both sides preserved: no reduction. Probes accrue once
				// — later fixpoint passes re-run only for other edges'
				// benefit, and a pass that provably does nothing must not
				// inflate the cost model.
				if pass == 0 {
					probes += len(l.rows) + len(r.rows)
				}
			}
		}
		if !changed {
			break
		}
	}
	return probes
}

// reduceTo keeps only as.rows whose key membership in keys matches want
// (want=false keeps members, i.e. matching rows; want=true keeps
// non-members, i.e. anti-join survivors). Null keys never match, so they
// survive only anti joins. Reports whether the row set shrank.
func reduceTo(as *aliasState, tbl *relation.Table, col string, keys map[value.Value]struct{}, anti bool) bool {
	ci, ok := tbl.Schema().ColumnIndex(col)
	if !ok {
		return false
	}
	kept := as.rows[:0]
	for _, r := range as.rows {
		v := tbl.Value(int(r), ci)
		_, member := keys[v]
		if v.IsNull() {
			member = false
		}
		if member != anti {
			kept = append(kept, r)
		}
	}
	shrank := len(kept) != len(as.rows)
	as.rows = kept
	return shrank
}
