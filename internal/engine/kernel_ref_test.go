// Package engine_test holds the black-box kernel identity tests: they pin
// Execute (vectorized kernels) to ExecuteReference (retained scalar path)
// over full SSB and TPC-H benchmark workloads, which requires importing the
// experiments harness — hence the external test package, avoiding the
// import cycle engine → experiments → engine.
package engine_test

import (
	"fmt"
	"reflect"
	"testing"

	"mto/internal/engine"
	"mto/internal/experiments"
)

func identityScale() experiments.Scale {
	s := experiments.DefaultScale()
	s.SF = 0.005
	s.PerTemplate = 2
	return s
}

func identityOptions() map[string]engine.Options {
	withDips := engine.CloudDWOptions()
	withDips.DiPs = true
	return map[string]engine.Options{
		"default":      engine.DefaultOptions(),
		"cloudDW":      engine.CloudDWOptions(),
		"cloudDW+diPs": withDips,
	}
}

// TestKernelIdentityOnBenchmarks asserts, per query, that the vectorized
// kernels return a Result byte-identical to the scalar reference path —
// same PerTable metrics, same SurvivingRows, bit-identical simulated
// Seconds — across the SSB and TPC-H workloads under every engine option
// set the experiments use.
func TestKernelIdentityOnBenchmarks(t *testing.T) {
	s := identityScale()
	for _, bench := range []*experiments.Bench{
		experiments.SSBBench(s), experiments.TPCHBench(s),
	} {
		d, err := experiments.DeployMethod(bench, experiments.MethodBaseline, true)
		if err != nil {
			t.Fatal(err)
		}
		for name, opts := range identityOptions() {
			e := engine.New(d.Store, d.Design, bench.Dataset, opts)
			for _, q := range bench.Workload.Queries {
				got, err := e.Execute(q)
				if err != nil {
					t.Fatalf("%s/%s/%s: kernel: %v", bench.Name, name, q.ID, err)
				}
				want, err := e.ExecuteReference(q)
				if err != nil {
					t.Fatalf("%s/%s/%s: reference: %v", bench.Name, name, q.ID, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s/%s: kernel diverges from reference:\n got %+v\nwant %+v",
						bench.Name, name, q.ID, got, want)
				}
			}
		}
	}
}

// TestGroupedIdentityOnBenchmarks pins the grouped-aggregate fold paths
// to each other over every rollup template in the three benchmark
// workloads: the kernel result (compressed dictionary-slot folds where
// the backend supports them) must be byte-identical to the scalar
// reference (sparse hash fold), and the group lists must come out in the
// canonical order — NULL group first, then ascending keys.
func TestGroupedIdentityOnBenchmarks(t *testing.T) {
	s := identityScale()
	for _, bench := range []*experiments.Bench{
		experiments.SSBBench(s), experiments.TPCHBench(s), experiments.TPCDSBench(s),
	} {
		d, err := experiments.DeployMethod(bench, experiments.MethodBaseline, true)
		if err != nil {
			t.Fatal(err)
		}
		e := engine.New(d.Store, d.Design, bench.Dataset, engine.CloudDWOptions())
		grouped := 0
		for _, q := range bench.Workload.Queries {
			if q.GroupBy.IsZero() {
				continue
			}
			grouped++
			got, err := e.Execute(q)
			if err != nil {
				t.Fatalf("%s/%s: kernel: %v", bench.Name, q.ID, err)
			}
			want, err := e.ExecuteReference(q)
			if err != nil {
				t.Fatalf("%s/%s: reference: %v", bench.Name, q.ID, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: grouped kernel diverges from reference:\n got %+v\nwant %+v",
					bench.Name, q.ID, got, want)
			}
			for _, av := range got.Aggregates {
				if av.GroupBy.IsZero() {
					t.Errorf("%s/%s: %s lost its GroupBy", bench.Name, q.ID, av.Spec)
				}
				for i := 1; i < len(av.Groups); i++ {
					if av.Groups[i-1].Key.Compare(av.Groups[i].Key) >= 0 {
						t.Errorf("%s/%s: %s group keys out of order: %s before %s",
							bench.Name, q.ID, av.Spec, av.Groups[i-1].Key, av.Groups[i].Key)
					}
				}
			}
		}
		if grouped == 0 {
			t.Errorf("%s: workload has no grouped queries", bench.Name)
		}
	}
}

// TestKernelIdentityUnderParallelReplay asserts whole-workload identity
// through RunWorkload: kernel and reference replays, sequential and
// parallel, all fold to the same WorkloadResult (including the
// floating-point Seconds totals). Run under -race this doubles as the
// concurrency-safety check for the engine's dictionary caches.
func TestKernelIdentityUnderParallelReplay(t *testing.T) {
	s := identityScale()
	bench := experiments.SSBBench(s)
	d, err := experiments.DeployMethod(bench, experiments.MethodBaseline, true)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(d.Store, d.Design, bench.Dataset, engine.CloudDWOptions())

	base, err := engine.RunWorkload(e, bench.Workload.Queries,
		engine.RunOptions{Parallelism: 1, Reference: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		for _, ref := range []bool{false, true} {
			name := fmt.Sprintf("parallel=%d reference=%v", par, ref)
			wr, err := engine.RunWorkload(e, bench.Workload.Queries,
				engine.RunOptions{Parallelism: par, Reference: ref})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(wr, base) {
				t.Errorf("%s: workload result diverges from sequential reference", name)
			}
		}
	}
}
