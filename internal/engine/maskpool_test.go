package engine

import "testing"

// TestDensePoolWipesAndReuses pins the scan kernel's mask pool contract:
// grabDense always returns an all-zero bitmap even when recycling dirty
// storage, and the steady-state grab/release round trip allocates nothing
// — the assertion behind the kernel path's allocs/op budget.
func TestDensePoolWipesAndReuses(t *testing.T) {
	db := grabDense(130)
	d := db.dense()
	d.Set(0)
	d.Set(77)
	d.Set(129)
	putDense(db)
	db2 := grabDense(130)
	for i, w := range db2.w {
		if w != 0 {
			t.Fatalf("recycled mask not wiped: word %d = %#x", i, w)
		}
	}
	// Growing past the recycled capacity reallocates, and the fresh words
	// are zero too.
	db3 := grabDense(130 * 64)
	for i, w := range db3.w {
		if w != 0 {
			t.Fatalf("grown mask not zero: word %d = %#x", i, w)
		}
	}
	putDense(db3)
	putDense(db2)

	allocs := testing.AllocsPerRun(100, func() {
		db := grabDense(4096)
		db.dense().Set(11)
		putDense(db)
	})
	if allocs > 0 {
		t.Errorf("steady-state grab/put allocates %.1f per run, want 0", allocs)
	}
}
