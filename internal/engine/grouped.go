package engine

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"mto/internal/bitmap"
	"mto/internal/block"
	"mto/internal/relation"
	"mto/internal/value"
	"mto/internal/workload"
)

// This file computes grouped aggregates (workload.Query.GroupBy): every
// aggregate in the query folds per group of the grouping column instead of
// once over the whole survivor set. As with flat aggregates, two folds
// exist and must agree byte for byte:
//
//   - the compressed grouped fold: when the backend is a
//     block.CompressedGroupedAggregator and the grouping column has a
//     global dictionary, supported aggregates accumulate per block into
//     dense per-slot state arrays keyed on dictionary codes (slot 0 =
//     NULL group, slot c+1 = code c), reading only encoded pages;
//   - the materialized grouped fold: everything else — the in-memory
//     backend, the reference path, float group columns, aggregates the
//     compressed compiler declined, and group dictionaries wider than
//     block.MaxGroupSlots — hashes survivors into sparse per-group
//     accumulators over the base table's decoded vectors.
//
// Group output order is deterministic everywhere: the NULL group first,
// then groups ascending by value — which for dictionary slots is simply
// ascending slot order, so the dense and sparse folds enumerate groups
// identically and Results stay byte-identical across backends, scan
// modes, and replay parallelism.

// GroupValue is one group's slice of a grouped aggregate: the group key
// (Null for rows whose grouping value is null) and the aggregate folded
// over that group's survivors.
type GroupValue struct {
	Key   value.Value
	Value value.Value
}

// groupAccum is one group's materialized fold state: the survivor count
// (COUNT(*)), per-spec int/string states, and per-spec float scratch
// (allocated only when the query aggregates a float column).
type groupAccum struct {
	rows int64
	sts  []block.AggState
	fsum []float64
	fmin []float64
	fmax []float64
}

func newGroupAccum(nspecs int, hasFloat bool) *groupAccum {
	acc := &groupAccum{sts: make([]block.AggState, nspecs)}
	if hasFloat {
		acc.fsum = make([]float64, nspecs)
		acc.fmin = make([]float64, nspecs)
		acc.fmax = make([]float64, nspecs)
	}
	return acc
}

// foldGroupedKernel computes q's grouped aggregates for the vectorized
// path: the compressed per-block grouped fold when the backend and the
// grouping column support it, the materialized hash fold otherwise.
func (e *Engine) foldGroupedKernel(q *workload.Query, vecAliases map[string]*vecAlias,
	tables map[string]*tableState) ([]AggValue, error) {

	gb := q.GroupBy
	a := vecAliases[gb.Alias]
	if !e.opts.DecodeScan {
		if cga, ok := e.store.(block.CompressedGroupedAggregator); ok {
			if dict := e.dictFor(a.table, gb.Column); dict != nil {
				out, err := e.foldGroupedCompressed(q, a, tables[a.table], dict, cga)
				if err != nil {
					return nil, err
				}
				if out != nil {
					return out, nil
				}
			}
		}
	}
	return e.foldGroupedMaterialized(a.table, e.ds.Table(a.table), a.set, gb, q.Aggregates)
}

// foldGroupedCompressed runs the dense dictionary-slot grouped fold over
// the alias table's candidate blocks. It returns (nil, nil) when the
// backend declines the whole compilation (missing/mismatched group
// column, dictionary wider than block.MaxGroupSlots) or supports none of
// the aggregates — the caller falls back to the materialized fold.
// Individually declined aggregates (floats, overflow-risk sums) fold
// materialized over the same survivor set and merge back by position.
func (e *Engine) foldGroupedCompressed(q *workload.Query, a *vecAlias, ts *tableState,
	dict *relation.ColumnDict, cga block.CompressedGroupedAggregator) ([]AggValue, error) {

	specs := q.Aggregates
	ga := cga.CompileGroupedAggregate(a.table, q.GroupBy.Column, dict, specs)
	if ga == nil {
		return nil, nil
	}
	supported := ga.Supported()
	want := make([]bool, len(specs))
	any := false
	for k, spec := range specs {
		if supported[k] {
			any = true
			if spec.Column != "" { // COUNT(*) reads GroupedStates.Rows
				want[k] = true
			}
		}
	}
	if !any {
		return nil, nil
	}
	gs := block.NewGroupedStates(dict.NumCodes()+1, want)
	for _, id := range ts.candidates {
		if err := ga.FoldBlockGrouped(id, a.set, gs); err != nil {
			return nil, err
		}
	}
	// A group exists iff it has survivors; ascending slot order is the
	// deterministic output order (NULL first, then ascending values).
	slots := make([]int, 0, 16)
	for slot, rows := range gs.Rows {
		if rows > 0 {
			slots = append(slots, slot)
		}
	}
	tbl := e.ds.Table(a.table)
	out := make([]AggValue, len(specs))
	var resid []int
	for k, spec := range specs {
		if !supported[k] {
			resid = append(resid, k)
			continue
		}
		_, kind, err := aggColumnKind(tbl, spec)
		if err != nil {
			return nil, err
		}
		av := AggValue{Spec: spec, Value: value.Null, GroupBy: q.GroupBy,
			Groups: make([]GroupValue, 0, len(slots))}
		for _, slot := range slots {
			key := value.Null
			if slot > 0 {
				key = dict.Value(int32(slot - 1))
			}
			var v value.Value
			if spec.Column == "" {
				v = value.Int(gs.Rows[slot])
			} else {
				v = finalizeAgg(spec, kind, &gs.Aggs[k][slot])
			}
			av.Groups = append(av.Groups, GroupValue{Key: key, Value: v})
		}
		out[k] = av
	}
	if len(resid) > 0 {
		residSpecs := make([]workload.Aggregate, len(resid))
		for i, k := range resid {
			residSpecs[i] = specs[k]
		}
		rout, err := e.foldGroupedMaterialized(a.table, tbl, a.set, q.GroupBy, residSpecs)
		if err != nil {
			return nil, err
		}
		for i, k := range resid {
			out[k] = rout[i]
		}
	}
	return out, nil
}

// foldGroupedMaterialized is the sparse hash grouped fold: survivors
// accumulate into per-group states keyed on the grouping column's
// dictionary code when one exists (so group enumeration order matches the
// dense fold exactly), or on the boxed group value otherwise (float group
// columns). Per-spec fold semantics — null skipping, checked int
// overflow, ascending-row float accumulation order — are identical to the
// flat materialized fold.
func (e *Engine) foldGroupedMaterialized(table string, tbl *relation.Table, set bitmap.Dense,
	gb workload.GroupBy, specs []workload.Aggregate) ([]AggValue, error) {

	cis := make([]int, len(specs))
	kinds := make([]value.Kind, len(specs))
	hasFloat := false
	for k, spec := range specs {
		ci, kind, err := aggColumnKind(tbl, spec)
		if err != nil {
			return nil, err
		}
		cis[k], kinds[k] = ci, kind
		if ci >= 0 && kind == value.KindFloat {
			hasFloat = true
		}
	}
	gci, ok := tbl.Schema().ColumnIndex(gb.Column)
	if !ok {
		return nil, fmt.Errorf("engine: group by %s: table %q has no column %q",
			gb, tbl.Schema().Table(), gb.Column)
	}
	gkind := tbl.Schema().Column(gci).Type
	gnulls := tbl.Nulls(gci)
	dict := e.dictFor(table, gb.Column)

	// Per-spec column accessors, resolved once.
	type colAccess struct {
		nulls  []bool
		ints   []int64
		floats []float64
		strs   []string
	}
	cols := make([]colAccess, len(specs))
	for k, ci := range cis {
		if ci < 0 {
			continue
		}
		cols[k].nulls = tbl.Nulls(ci)
		switch kinds[k] {
		case value.KindInt:
			cols[k].ints = tbl.Ints(ci)
		case value.KindFloat:
			cols[k].floats = tbl.Floats(ci)
		default:
			cols[k].strs = tbl.Strings(ci)
		}
	}
	foldRow := func(acc *groupAccum, r int) error {
		acc.rows++
		for k, spec := range specs {
			if cis[k] < 0 {
				continue // COUNT(*) reads acc.rows
			}
			c := &cols[k]
			if c.nulls != nil && c.nulls[r] {
				continue
			}
			st := &acc.sts[k]
			switch kinds[k] {
			case value.KindInt:
				v := c.ints[r]
				if spec.Op == workload.AggSum || spec.Op == workload.AggAvg {
					if (v > 0 && st.Sum > math.MaxInt64-v) || (v < 0 && st.Sum < math.MinInt64-v) {
						return fmt.Errorf("engine: aggregate %s: int64 sum overflow", spec)
					}
				}
				st.FoldInt(v)
			case value.KindFloat:
				v := c.floats[r]
				acc.fsum[k] += v
				if !st.Seen || v < acc.fmin[k] {
					acc.fmin[k] = v
				}
				if !st.Seen || v > acc.fmax[k] {
					acc.fmax[k] = v
				}
				st.Seen = true
				st.Count++
			default:
				st.FoldStr(c.strs[r])
			}
		}
		return nil
	}

	// Accumulate, then order groups: dictionary codes are ranks, so slot
	// order is value order and matches the dense compressed fold; boxed
	// keys sort by value.Compare (Null first).
	type orderedGroup struct {
		key value.Value
		acc *groupAccum
	}
	var ordered []orderedGroup
	if dict != nil {
		accums := map[int32]*groupAccum{}
		for w := range set {
			word := set[w]
			for word != 0 {
				r := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				slot := dict.Codes[r] + 1 // -1 (null) → slot 0
				acc := accums[slot]
				if acc == nil {
					acc = newGroupAccum(len(specs), hasFloat)
					accums[slot] = acc
				}
				if err := foldRow(acc, r); err != nil {
					return nil, err
				}
			}
		}
		slots := make([]int32, 0, len(accums))
		for slot := range accums {
			slots = append(slots, slot)
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		ordered = make([]orderedGroup, 0, len(slots))
		for _, slot := range slots {
			key := value.Null
			if slot > 0 {
				key = dict.Value(slot - 1)
			}
			ordered = append(ordered, orderedGroup{key: key, acc: accums[slot]})
		}
	} else {
		var gi []int64
		var gf []float64
		var gstr []string
		switch gkind {
		case value.KindInt:
			gi = tbl.Ints(gci)
		case value.KindFloat:
			gf = tbl.Floats(gci)
		default:
			gstr = tbl.Strings(gci)
		}
		accums := map[value.Value]*groupAccum{}
		for w := range set {
			word := set[w]
			for word != 0 {
				r := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				key := value.Null
				if gnulls == nil || !gnulls[r] {
					switch gkind {
					case value.KindInt:
						key = value.Int(gi[r])
					case value.KindFloat:
						key = value.Float(gf[r])
					default:
						key = value.String(gstr[r])
					}
				}
				acc := accums[key]
				if acc == nil {
					acc = newGroupAccum(len(specs), hasFloat)
					accums[key] = acc
				}
				if err := foldRow(acc, r); err != nil {
					return nil, err
				}
			}
		}
		ordered = make([]orderedGroup, 0, len(accums))
		for key, acc := range accums {
			ordered = append(ordered, orderedGroup{key: key, acc: acc})
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].key.Less(ordered[j].key) })
	}

	out := make([]AggValue, len(specs))
	for k, spec := range specs {
		av := AggValue{Spec: spec, Value: value.Null, GroupBy: gb,
			Groups: make([]GroupValue, 0, len(ordered))}
		for _, g := range ordered {
			var v value.Value
			switch {
			case cis[k] < 0:
				v = value.Int(g.acc.rows)
			case kinds[k] == value.KindFloat:
				v = finalizeFloatAgg(spec, &g.acc.sts[k], g.acc.fsum[k], g.acc.fmin[k], g.acc.fmax[k])
			default:
				v = finalizeAgg(spec, kinds[k], &g.acc.sts[k])
			}
			av.Groups = append(av.Groups, GroupValue{Key: g.key, Value: v})
		}
		out[k] = av
	}
	return out, nil
}
