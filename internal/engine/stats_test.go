package engine

import (
	"sync"
	"testing"

	"mto/internal/workload"
)

// TestStatsSnapshotConcurrent hammers Execute from many goroutines while
// snapshotting concurrently (under -race this is the data-race check for
// the engine counters), then verifies the final snapshot's exact counters
// against a sequential replay of the same workload on a fresh engine.
func TestStatsSnapshotConcurrent(t *testing.T) {
	ds := snowflakeDS(t, 100, 5000, 3)
	queries := snowflakeWorkload(24)

	store, design := installSnowflake(t, ds, 500)
	e := New(store, design, ds, parallelEngineOptions())

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += 8 {
				if _, err := e.Execute(queries[i]); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := e.StatsSnapshot()
			if s.Queries < 0 || s.BlocksRead < 0 {
				t.Error("negative counter in snapshot")
			}
		}
	}()
	wg.Wait()
	<-done

	got := e.StatsSnapshot()
	if got.Queries != int64(len(queries)) || got.Errors != 0 {
		t.Fatalf("queries=%d errors=%d, want %d/0", got.Queries, got.Errors, len(queries))
	}

	refStore, refDesign := installSnowflake(t, ds, 500)
	ref := New(refStore, refDesign, ds, parallelEngineOptions())
	var wantBlocks, wantRows int64
	for _, q := range queries {
		res, err := ref.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		wantBlocks += int64(res.BlocksRead)
		for _, ta := range res.PerTable {
			wantRows += int64(ta.RowsScanned)
		}
	}
	if got.BlocksRead != wantBlocks || got.RowsScanned != wantRows {
		t.Fatalf("blocks=%d rows=%d, want %d/%d", got.BlocksRead, got.RowsScanned, wantBlocks, wantRows)
	}
	if got.SimSeconds <= 0 {
		t.Fatalf("SimSeconds=%v, want > 0", got.SimSeconds)
	}

	// The errors counter meters failed executions.
	bad := snowflakeWorkload(1)[0]
	bad.Tables[0].Table = "no-such-table"
	if _, err := e.Execute(bad); err == nil {
		t.Fatal("expected error for missing table")
	}
	if s := e.StatsSnapshot(); s.Errors != 1 {
		t.Fatalf("Errors=%d after failed query, want 1", s.Errors)
	}
}

// TestReorderAggregates covers the cache-hit declaration-order restoration.
func TestReorderAggregates(t *testing.T) {
	mk := func(op workload.AggOp, alias, col string) AggValue {
		return AggValue{Spec: workload.Aggregate{Op: op, Alias: alias, Column: col}}
	}
	cached := []AggValue{
		mk(workload.AggCount, "lo", ""),
		mk(workload.AggMin, "d", "k"),
		mk(workload.AggSum, "lo", "rev"),
	}
	want := []string{"sum(lo.rev)", "count(lo.*)", "min(d.k)"}
	out, ok := ReorderAggregates(cached, want)
	if !ok {
		t.Fatal("reorder failed on matching sets")
	}
	for i, spec := range want {
		if out[i].Spec.String() != spec {
			t.Fatalf("position %d: got %s, want %s", i, out[i].Spec.String(), spec)
		}
	}
	if _, ok := ReorderAggregates(cached, []string{"sum(lo.rev)", "count(lo.*)"}); ok {
		t.Fatal("length mismatch accepted")
	}
	if _, ok := ReorderAggregates(cached, []string{"sum(lo.rev)", "count(lo.*)", "max(d.k)"}); ok {
		t.Fatal("spec mismatch accepted")
	}
	out, ok = ReorderAggregates(nil, nil)
	if !ok || out != nil {
		t.Fatal("empty sets should reorder to nil, true")
	}
}
