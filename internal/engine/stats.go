package engine

import (
	"math"
	"sync/atomic"
)

// Stats is a point-in-time copy of one engine's cumulative execution
// counters. All fields are monotonically increasing over the engine's
// lifetime; subtract two snapshots to measure an interval.
type Stats struct {
	// Queries counts successful Execute/ExecuteReference completions;
	// Errors counts failed ones.
	Queries int64 `json:"queries"`
	Errors  int64 `json:"errors"`
	// BlocksRead / RowsScanned / SimSeconds sum the corresponding Result
	// fields of every successful execution through this engine. They track
	// the engine's own traffic — unlike block.Stats, which meters the
	// backend across every engine sharing it.
	BlocksRead  int64   `json:"blocks_read"`
	RowsScanned int64   `json:"rows_scanned"`
	SimSeconds  float64 `json:"sim_seconds"`
}

// Sub returns s - o, for measuring deltas between snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Queries:     s.Queries - o.Queries,
		Errors:      s.Errors - o.Errors,
		BlocksRead:  s.BlocksRead - o.BlocksRead,
		RowsScanned: s.RowsScanned - o.RowsScanned,
		SimSeconds:  s.SimSeconds - o.SimSeconds,
	}
}

// engineCounters is the engine's live counter set. Every field is an
// atomic, so concurrent Execute calls (the parallel workload pool, the
// serving layer's workers) update them without sharing the engine's cache
// mutex, and StatsSnapshot reads a consistent copy of each counter without
// observing a torn mid-update value.
type engineCounters struct {
	queries     atomic.Int64
	errors      atomic.Int64
	blocksRead  atomic.Int64
	rowsScanned atomic.Int64
	simSecBits  atomic.Uint64 // float64 bits, CAS-accumulated
}

// note records one execution's outcome.
func (c *engineCounters) note(res *Result, err error) {
	if err != nil {
		c.errors.Add(1)
		return
	}
	c.queries.Add(1)
	c.blocksRead.Add(int64(res.BlocksRead))
	rows := 0
	for _, ta := range res.PerTable {
		rows += ta.RowsScanned
	}
	c.rowsScanned.Add(int64(rows))
	for {
		old := c.simSecBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + res.Seconds)
		if c.simSecBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// StatsSnapshot returns a copy-on-read snapshot of the engine's execution
// counters: each counter is loaded atomically, so a snapshot taken while
// queries are in flight never reads a counter mid-update. (The float
// SimSeconds total depends on accumulation order under concurrency, as any
// parallel float reduction does; every integer counter is exact.)
func (e *Engine) StatsSnapshot() Stats {
	return Stats{
		Queries:     e.counters.queries.Load(),
		Errors:      e.counters.errors.Load(),
		BlocksRead:  e.counters.blocksRead.Load(),
		RowsScanned: e.counters.rowsScanned.Load(),
		SimSeconds:  math.Float64frombits(e.counters.simSecBits.Load()),
	}
}
