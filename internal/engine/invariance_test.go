package engine

import (
	"fmt"
	"reflect"
	"testing"

	"mto/internal/block"
	"mto/internal/layout"
	"mto/internal/predicate"
	"mto/internal/value"
	"mto/internal/workload"
)

// TestJoinVariantInvarianceAcrossLayouts replays every join type — inner,
// semi, both one-sided outers, full outer, and both anti-semis — through
// RunWorkload over three different physical layouts. Surviving row counts
// of result-relevant aliases are a function of data and query only, so they
// must agree across layouts; and on each layout the parallel kernel replay
// must be byte-identical to a sequential reference replay. Run under -race
// this also exercises the engine's shared dictionary/translation caches
// concurrently.
//
// An anti join's non-preserved side is excluded: its rows only supply keys
// and never reach the result (§4.1.1 — that irrelevance is exactly what
// makes the side block-prunable), so how many of them survive the scan
// legitimately varies with how well the layout clusters the pruned keys.
func TestJoinVariantInvarianceAcrossLayouts(t *testing.T) {
	ds := starDS(t, 100, 10000, 14)
	types := []workload.JoinType{
		workload.InnerJoin,
		workload.SemiJoin,
		workload.LeftOuterJoin,
		workload.RightOuterJoin,
		workload.FullOuterJoin,
		workload.LeftAntiSemiJoin,
		workload.RightAntiSemiJoin,
	}
	relevant := func(jt workload.JoinType) []string {
		switch jt {
		case workload.LeftAntiSemiJoin:
			return []string{"dim"} // fact rows only feed the key set
		case workload.RightAntiSemiJoin:
			return []string{"fact"} // dim rows only feed the key set
		default:
			return []string{"dim", "fact"}
		}
	}
	var queries []*workload.Query
	for i, jt := range types {
		q := workload.NewQuery(fmt.Sprintf("jt-%d", i),
			workload.TableRef{Table: "dim"},
			workload.TableRef{Table: "fact"},
		)
		q.AddTypedJoin(workload.Join{
			Left: "dim", LeftColumn: "id", Right: "fact", RightColumn: "did", Type: jt,
		})
		q.Filter("dim", predicate.NewComparison("attr", predicate.Eq, value.Int(3)))
		q.Filter("fact", predicate.NewComparison("v", predicate.Lt, value.Int(500)))
		queries = append(queries, q)
	}

	layouts := []layout.SortKeys{
		{"fact": "d", "dim": "id"},
		{"fact": "did", "dim": "attr"},
		{"fact": "v", "dim": "id"},
	}
	opts := CloudDWOptions()
	opts.DiPs = true

	var surviving []map[string]int // one entry per (layout, query), layout-major
	for li, keys := range layouts {
		d, err := layout.SortKeyDesign(ds, keys, 500)
		if err != nil {
			t.Fatal(err)
		}
		store := block.NewStore(block.DefaultCostModel())
		if _, err := d.Install(store, nil, 0); err != nil {
			t.Fatal(err)
		}
		e := New(store, d, ds, opts)
		kernel, err := RunWorkload(e, queries, RunOptions{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := RunWorkload(e, queries, RunOptions{Parallelism: 1, Reference: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(kernel, ref) {
			t.Fatalf("layout %d: parallel kernel replay diverges from sequential reference", li)
		}
		for _, res := range kernel.Results {
			surviving = append(surviving, res.SurvivingRows)
		}
	}
	for qi, q := range queries {
		base := surviving[qi]
		for li := 1; li < len(layouts); li++ {
			got := surviving[li*len(queries)+qi]
			for _, alias := range relevant(types[qi]) {
				if got[alias] != base[alias] {
					t.Errorf("query %s alias %s: survivors differ across layouts: %d vs %d",
						q.ID, alias, base[alias], got[alias])
				}
			}
		}
	}
}
