package induce

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"mto/internal/predicate"
	"mto/internal/relation"
	"mto/internal/value"
)

// EvaluateAll materializes the literal form of every predicate in preds over
// ds, producing stages identical to calling (*Predicate).Evaluate on each —
// at any parallelism — but batched (§3.2.1 step 1c at scale):
//
//   - Scan sharing: predicates are grouped by (source table, source cut);
//     each distinct cut is compiled once via predicate.FillMask and its
//     match mask filled in one vectorized pass, then projected onto every
//     stage-0 join column that needs it.
//   - Prefix sharing: each distinct (source cut, hop prefix) is evaluated
//     exactly once; predicates sharing a prefix share the resulting key
//     set. Shared sets are marked so incremental maintenance clones them
//     on first mutation (see mutableStage).
//   - Vectorized hops: semi-join probe and projection run over the typed
//     column vectors (Table.Ints / Table.Strings) with a dense row mask
//     between them, and integer keys enter the roaring bitmap through the
//     bulk bitmap.AddMany path.
//   - Parallelism: the distinct scans/hops of one depth level are
//     independent and fan out across a worker pool of the given size
//     (<= 0 selects GOMAXPROCS; 1 forces the sequential path).
//
// On error no predicate is mutated; the first error reported follows the
// input order of preds, matching what the scalar path would have returned
// for that predicate.
func EvaluateAll(ds *relation.Dataset, preds []*Predicate, parallelism int) error {
	if len(preds) == 0 {
		return nil
	}
	plan := newEvalPlan(preds)
	par := parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	// Level 0: one task per distinct (source table, source cut) scan.
	tasks := make([]func(), 0, len(plan.groups))
	for _, g := range plan.groups {
		g := g
		tasks = append(tasks, func() { g.run(ds) })
	}
	runTasks(tasks, par)
	if err := plan.firstError(); err != nil {
		return err
	}

	// Levels >= 1: one task per distinct hop; a level only depends on the
	// one before it, so each level is an independent fan-out.
	for level := 1; level < len(plan.levels); level++ {
		tasks = tasks[:0]
		for _, n := range plan.levels[level] {
			n := n
			tasks = append(tasks, func() { n.runHop(ds) })
		}
		runTasks(tasks, par)
		if err := plan.firstError(); err != nil {
			return err
		}
	}

	// Publish: every predicate's stages point at its plan nodes' sets;
	// sets referenced by more than one predicate become copy-on-write.
	for pi, p := range preds {
		nodes := plan.predNodes[pi]
		p.stages = make([]*keySet, len(nodes))
		for i, n := range nodes {
			if n.refs > 1 {
				n.set.shared = true
			}
			p.stages[i] = n.set
		}
	}
	return nil
}

// stageNode is one distinct (source cut, hop prefix) in the shared
// evaluation plan. Its key canonicalizes the full chain that produces the
// stage's key set, so equal keys mean equal sets and the node is computed
// once no matter how many predicates reference it.
type stageNode struct {
	key    string
	level  int
	parent *stageNode // nil at level 0
	table  string     // scanned base table
	inCol  string     // level >= 1: column probed against parent's set
	outCol string     // column projected into set
	set    *keySet
	refs   int // number of predicate stages referencing this node
	err    error
}

// scanGroup collects the stage-0 nodes sharing one (source table, source
// cut) scan; the cut's match mask is computed once for all of them.
type scanGroup struct {
	table string
	cut   predicate.Predicate
	nodes []*stageNode // distinct projection columns over the same scan
}

// evalPlan is the deduplicated DAG of stage nodes for a predicate batch.
type evalPlan struct {
	nodes     map[string]*stageNode
	groups    map[string]*scanGroup
	levels    [][]*stageNode // levels[i] = hop nodes at depth i (i >= 1)
	predNodes [][]*stageNode // per input predicate, its stage nodes in order
}

func newEvalPlan(preds []*Predicate) *evalPlan {
	pl := &evalPlan{
		nodes:     map[string]*stageNode{},
		groups:    map[string]*scanGroup{},
		predNodes: make([][]*stageNode, 0, len(preds)),
	}
	for _, p := range preds {
		hops := p.Path.Hops
		// The group key identifies the scan; node keys additionally chain
		// the projection column and every later hop. String rendering as
		// canonical identity matches FromWorkload's dedup of whole
		// predicates.
		groupKey := p.Path.Source() + "\x00" + p.SourceCut.String()
		key := groupKey + "\x00" + hops[0].FromColumn
		var parent *stageNode
		nodes := make([]*stageNode, len(hops))
		for i, h := range hops {
			if i > 0 {
				key += "\x00" + h.FromTable + "\x00" + hops[i-1].ToColumn + "\x00" + h.FromColumn
			}
			n := pl.nodes[key]
			if n == nil {
				n = &stageNode{key: key, level: i, parent: parent, set: newKeySet()}
				if i == 0 {
					n.table, n.outCol = p.Path.Source(), h.FromColumn
					g := pl.groups[groupKey]
					if g == nil {
						g = &scanGroup{table: n.table, cut: p.SourceCut}
						pl.groups[groupKey] = g
					}
					g.nodes = append(g.nodes, n)
				} else {
					n.table, n.inCol, n.outCol = h.FromTable, hops[i-1].ToColumn, h.FromColumn
					for len(pl.levels) <= i {
						pl.levels = append(pl.levels, nil)
					}
					pl.levels[i] = append(pl.levels[i], n)
				}
				pl.nodes[key] = n
			}
			n.refs++
			nodes[i] = n
			parent = n
		}
		pl.predNodes = append(pl.predNodes, nodes)
	}
	return pl
}

// firstError returns the error of the first failed stage in input-predicate
// order, so the reported error is deterministic regardless of scheduling.
func (pl *evalPlan) firstError() error {
	for _, nodes := range pl.predNodes {
		for _, n := range nodes {
			if n.err != nil {
				return n.err
			}
		}
	}
	return nil
}

// run evaluates a stage-0 scan group: fill the cut's match mask once, then
// project it onto every requested join column.
func (g *scanGroup) run(ds *relation.Dataset) {
	t := ds.Table(g.table)
	if t == nil {
		err := fmt.Errorf("induce: missing source table %q", g.table)
		for _, n := range g.nodes {
			n.err = err
		}
		return
	}
	cols := make([]int, len(g.nodes))
	live := 0
	for i, n := range g.nodes {
		ci, ok := t.Schema().ColumnIndex(n.outCol)
		if !ok {
			n.err = fmt.Errorf("induce: %s has no column %q", g.table, n.outCol)
			cols[i] = -1
			continue
		}
		if err := checkJoinColumnKind(t, ci); err != nil {
			n.err = err
			cols[i] = -1
			continue
		}
		cols[i] = ci
		live++
	}
	if live == 0 {
		return
	}
	mask := make([]uint64, (t.NumRows()+63)>>6)
	predicate.FillMask(g.cut, t, mask)
	for i, n := range g.nodes {
		if cols[i] < 0 {
			continue
		}
		projectMask(t, mask, cols[i], n.set)
		n.set.optimize()
	}
}

// runHop evaluates one semi-join hop: probe the parent stage's key set over
// the hop table's in-column, then project the matching rows' out-column.
func (n *stageNode) runHop(ds *relation.Dataset) {
	t := ds.Table(n.table)
	if t == nil {
		n.err = fmt.Errorf("induce: missing table %q", n.table)
		return
	}
	inCi, ok := t.Schema().ColumnIndex(n.inCol)
	if !ok {
		n.err = fmt.Errorf("induce: %s has no column %q", n.table, n.inCol)
		return
	}
	outCi, ok := t.Schema().ColumnIndex(n.outCol)
	if !ok {
		n.err = fmt.Errorf("induce: %s has no column %q", n.table, n.outCol)
		return
	}
	if err := checkJoinColumnKind(t, inCi); err != nil {
		n.err = err
		return
	}
	if err := checkJoinColumnKind(t, outCi); err != nil {
		n.err = err
		return
	}
	mask := make([]uint64, (t.NumRows()+63)>>6)
	fillProbeMask(t, inCi, n.parent.set, mask)
	projectMask(t, mask, outCi, n.set)
	n.set.optimize()
}

// fillProbeMask sets bit r for every row of t whose ci value is a member of
// prev — the vectorized semi-join probe. Null rows never match.
func fillProbeMask(t *relation.Table, ci int, prev *keySet, mask []uint64) {
	switch t.Schema().Column(ci).Type {
	case value.KindInt:
		vals := t.Ints(ci)
		// Snapshot the compressed set as a flat bitset when it is small
		// relative to the probe, turning each membership test from two
		// binary searches into one bit load. Out-of-range keys (negative or
		// >= 2^32, or beyond the snapshot) fall back to the exact path.
		if d := prev.denseSnapshot(2*len(vals) + 4096); d != nil {
			limit := uint64(len(d)) << 6
			for r, v := range vals {
				var b uint64
				if uint64(v) < limit {
					if d.Get(int(v)) {
						b = 1
					}
				} else if prev.containsInt(v) {
					b = 1
				}
				mask[r>>6] |= b << (uint(r) & 63)
			}
			break
		}
		for r, v := range vals {
			var b uint64
			if prev.containsInt(v) {
				b = 1
			}
			mask[r>>6] |= b << (uint(r) & 63)
		}
	case value.KindString:
		for r, v := range t.Strings(ci) {
			var b uint64
			if prev.containsStr(v) {
				b = 1
			}
			mask[r>>6] |= b << (uint(r) & 63)
		}
	}
	for r, isNull := range t.Nulls(ci) {
		if isNull {
			mask[r>>6] &^= 1 << (uint(r) & 63)
		}
	}
}

// projectMask adds the ci value of every masked row to set, dropping nulls
// (equijoin semantics). Integer keys are buffered and bulk-added so roaring
// container upgrades amortize across the whole projection.
func projectMask(t *relation.Table, mask []uint64, ci int, set *keySet) {
	nulls := t.Nulls(ci)
	switch t.Schema().Column(ci).Type {
	case value.KindInt:
		vals := t.Ints(ci)
		buf := make([]uint32, 0, 1024)
		for w, word := range mask {
			base := w << 6
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				r := base | b
				if nulls != nil && nulls[r] {
					continue
				}
				if v := vals[r]; inBitmapRange(v) {
					buf = append(buf, uint32(v))
				} else {
					set.addInt(v)
				}
			}
		}
		set.bm.AddMany(buf)
	case value.KindString:
		vals := t.Strings(ci)
		for w, word := range mask {
			base := w << 6
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				r := base | b
				if nulls != nil && nulls[r] {
					continue
				}
				set.addStr(vals[r])
			}
		}
	}
}

// runTasks executes the tasks across at most par workers (1 runs inline).
// Tasks must be independent; each writes only its own nodes, so results are
// identical at any worker count.
func runTasks(tasks []func(), par int) {
	if par > len(tasks) {
		par = len(tasks)
	}
	if par <= 1 {
		for _, task := range tasks {
			task()
		}
		return
	}
	ch := make(chan func())
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for task := range ch {
				task()
			}
		}()
	}
	for _, task := range tasks {
		ch <- task
	}
	close(ch)
	wg.Wait()
}
