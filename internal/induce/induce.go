package induce

import (
	"fmt"
	"math"

	"mto/internal/joingraph"
	"mto/internal/predicate"
	"mto/internal/relation"
	"mto/internal/value"
)

// Predicate is a join-induced predicate on a target table (§4.1). The
// logical form is "target.col IN (SELECT ... chain of semi joins ... WHERE
// sourceCut)"; Evaluate materializes the literal form. Qd-trees store both:
// the logical form routes queries, the literal form routes records.
type Predicate struct {
	// Path is the induction path from the source table to the target.
	Path joingraph.Path
	// SourceCut is the simple predicate over the source table.
	SourceCut predicate.Predicate

	// HopRates holds, per hop, the effective sampling rate of the hop's
	// scanned table when the literal was last evaluated (1 for tables kept
	// whole). Cardinality adjustment multiplies the rates of the joins on
	// a path instead of assuming a uniform s per join (§4.2). Nil means
	// "use the dataset-wide rate for every hop".
	HopRates []float64

	// stages[i] is the key set after stage i of the semi-join chain:
	// stages[0] holds the projection of source rows satisfying SourceCut
	// onto Hops[0].FromColumn; stages[i] (i ≥ 1) the projection of
	// Hops[i].FromTable rows matching stages[i-1] onto
	// Hops[i].FromColumn. The literal cut is stages[depth-1], interpreted
	// over the target's join column Hops[depth-1].ToColumn.
	stages []*keySet
}

// New returns an unevaluated join-induced predicate.
func New(path joingraph.Path, sourceCut predicate.Predicate) *Predicate {
	return &Predicate{Path: path, SourceCut: sourceCut}
}

// Target returns the base table the predicate filters.
func (p *Predicate) Target() string { return p.Path.Target() }

// TargetColumn returns the target's join column the literal cut constrains.
func (p *Predicate) TargetColumn() string { return p.Path.TargetColumn() }

// Depth returns the induction depth.
func (p *Predicate) Depth() int { return p.Path.Depth() }

// Evaluated reports whether the literal form has been materialized.
func (p *Predicate) Evaluated() bool { return len(p.stages) > 0 }

// checkJoinColumnKind enforces the keySet kind contract at evaluation time:
// scanned join columns must be int or string. Nulls inside a supported
// column are dropped (equijoins never match null); an unsupported column
// kind (e.g. float join keys) would silently evaluate to an always-empty —
// and therefore wrong — literal cut, so it is an explicit error instead.
func checkJoinColumnKind(t *relation.Table, ci int) error {
	kind := t.Schema().Column(ci).Type
	if kind != value.KindInt && kind != value.KindString {
		return fmt.Errorf("induce: unsupported %s join column %s.%s",
			kind, t.Schema().Table(), t.Schema().Column(ci).Name)
	}
	return nil
}

// Evaluate materializes the literal cut by running the semi-join chain over
// ds (§3.2.1 step 1c). It may be called again after data changes to rebuild
// from scratch; prefer ApplyInsert/ApplyDelete for incremental maintenance.
//
// This is the scalar reference implementation; EvaluateAll is the batched
// production path and must stay byte-identical to it. On error the
// predicate is left unchanged (a previously evaluated literal stays valid),
// never half-materialized.
func (p *Predicate) Evaluate(ds *relation.Dataset) error {
	hops := p.Path.Hops
	stages := make([]*keySet, len(hops))

	src := ds.Table(p.Path.Source())
	if src == nil {
		return fmt.Errorf("induce: missing source table %q", p.Path.Source())
	}
	stage0 := newKeySet()
	ci, ok := src.Schema().ColumnIndex(hops[0].FromColumn)
	if !ok {
		return fmt.Errorf("induce: %s has no column %q", p.Path.Source(), hops[0].FromColumn)
	}
	if err := checkJoinColumnKind(src, ci); err != nil {
		return err
	}
	match := predicate.Compile(p.SourceCut, src)
	for r := 0; r < src.NumRows(); r++ {
		if match(r) {
			stage0.add(src.Value(r, ci))
		}
	}
	stage0.optimize()
	stages[0] = stage0

	for i := 1; i < len(hops); i++ {
		tbl := ds.Table(hops[i].FromTable)
		if tbl == nil {
			return fmt.Errorf("induce: missing table %q", hops[i].FromTable)
		}
		inCol, ok := tbl.Schema().ColumnIndex(hops[i-1].ToColumn)
		if !ok {
			return fmt.Errorf("induce: %s has no column %q", hops[i].FromTable, hops[i-1].ToColumn)
		}
		outCol, ok := tbl.Schema().ColumnIndex(hops[i].FromColumn)
		if !ok {
			return fmt.Errorf("induce: %s has no column %q", hops[i].FromTable, hops[i].FromColumn)
		}
		if err := checkJoinColumnKind(tbl, inCol); err != nil {
			return err
		}
		if err := checkJoinColumnKind(tbl, outCol); err != nil {
			return err
		}
		prev, next := stages[i-1], newKeySet()
		for r := 0; r < tbl.NumRows(); r++ {
			if prev.contains(tbl.Value(r, inCol)) {
				next.add(tbl.Value(r, outCol))
			}
		}
		next.optimize()
		stages[i] = next
	}
	p.stages = stages
	return nil
}

// literal returns the final-stage key set (panics if unevaluated).
func (p *Predicate) literal() *keySet {
	if !p.Evaluated() {
		panic("induce: predicate not evaluated")
	}
	return p.stages[len(p.stages)-1]
}

// MatchesRow reports whether the target-table row satisfies the literal cut
// (record routing, §4.1.2). t must be the target table.
func (p *Predicate) MatchesRow(t *relation.Table, row int) bool {
	ci, ok := t.Schema().ColumnIndex(p.TargetColumn())
	if !ok {
		return false
	}
	return p.literal().contains(t.Value(row, ci))
}

// CompileRow returns a fast bound row matcher for the target table.
func (p *Predicate) CompileRow(t *relation.Table) func(row int) bool {
	ci, ok := t.Schema().ColumnIndex(p.TargetColumn())
	if !ok {
		return func(int) bool { return false }
	}
	lit := p.literal()
	if t.Schema().Column(ci).Type == value.KindInt {
		ints := t.Ints(ci)
		return func(row int) bool {
			if t.IsNullAt(row, ci) {
				return false
			}
			return lit.containsInt(ints[row])
		}
	}
	return func(row int) bool { return lit.contains(t.Value(row, ci)) }
}

// LiteralSize returns the cardinality of the literal cut.
func (p *Predicate) LiteralSize() int { return p.literal().card() }

// CA returns the cardinality adjustment for a given sample rate: s^d where
// d is the induction depth (§4.2). Simple cuts have CA 1; this predicate's
// CA shrinks with depth because joining d independent samples thins the
// result multiplicatively.
func (p *Predicate) CA(sampleRate float64) float64 {
	return math.Pow(sampleRate, float64(p.Depth()))
}

// MemBytes estimates the in-memory footprint of the literal stages.
func (p *Predicate) MemBytes() int {
	n := 0
	for _, s := range p.stages {
		if s != nil {
			n += s.memBytes()
		}
	}
	return n
}

// String renders the logical form as nested semi-join subqueries, matching
// the paper's Table 1 presentation.
func (p *Predicate) String() string {
	hops := p.Path.Hops
	// Build inside-out: innermost subquery selects from the source.
	inner := fmt.Sprintf("SELECT %s.%s FROM %s WHERE %s",
		p.Path.Source(), hops[0].FromColumn, p.Path.Source(), p.SourceCut)
	for i := 1; i < len(hops); i++ {
		inner = fmt.Sprintf("SELECT %s.%s FROM %s WHERE %s.%s IN (%s)",
			hops[i].FromTable, hops[i].FromColumn, hops[i].FromTable,
			hops[i].FromTable, hops[i-1].ToColumn, inner)
	}
	return fmt.Sprintf("%s.%s IN (%s)", p.Target(), p.TargetColumn(), inner)
}

// stageIndexesForTable returns every stage a table participates in as the
// scanned relation: the source is stage 0; Hops[i].FromTable is stage i.
// A base table can appear in several stages of one path — joingraph only
// forbids revisiting an *alias*, so self-join aliases of the same base
// table legally occupy distinct hops — and incremental maintenance must
// update all of them. The result is empty when the table is not scanned by
// this predicate (the target table itself is only probed, never scanned).
func (p *Predicate) stageIndexesForTable(table string) []int {
	var out []int
	if p.Path.Source() == table {
		out = append(out, 0)
	}
	for i := 1; i < len(p.Path.Hops); i++ {
		if p.Path.Hops[i].FromTable == table {
			out = append(out, i)
		}
	}
	return out
}

// AffectedBy reports whether data changes to the table require updating
// this predicate's literal cut (§5.2: the changed table lies on the
// induction path, excluding the target).
func (p *Predicate) AffectedBy(table string) bool {
	return p.Evaluated() && len(p.stageIndexesForTable(table)) > 0
}

// mutableStage returns stage i's key set, first cloning it if it is shared
// with other predicates (batched evaluation deduplicates common prefixes);
// the clone replaces the shared set in this predicate only, so incremental
// maintenance never leaks into siblings.
func (p *Predicate) mutableStage(i int) *keySet {
	s := p.stages[i]
	if s.shared {
		s = s.clone()
		p.stages[i] = s
	}
	return s
}

// ApplyInsert incrementally updates the literal stages for rows newly
// appended to the named table. Under referential integrity and the
// unique-source-column restriction, inserted rows can extend key sets but
// never require re-scanning downstream tables (no existing row can
// reference a brand-new unique key), so the update is local to the changed
// table's stage (§5.2).
func (p *Predicate) ApplyInsert(ds *relation.Dataset, table string, rows []int) error {
	return p.applyChange(ds, table, rows, true)
}

// ApplyDelete incrementally removes the contributions of the given rows
// (which must still be present in the table when called). Referential
// integrity guarantees no other surviving row references the removed keys.
func (p *Predicate) ApplyDelete(ds *relation.Dataset, table string, rows []int) error {
	return p.applyChange(ds, table, rows, false)
}

func (p *Predicate) applyChange(ds *relation.Dataset, table string, rows []int, insert bool) error {
	if !p.Evaluated() {
		return fmt.Errorf("induce: predicate not evaluated")
	}
	stages := p.stageIndexesForTable(table)
	if len(stages) == 0 {
		return nil // table not on the path: nothing to do
	}
	tbl := ds.Table(table)
	if tbl == nil {
		return fmt.Errorf("induce: missing table %q", table)
	}
	// Stage order matters when the table occupies several stages: an insert
	// must extend earlier stages first so a later stage's qualifying check
	// sees keys added by the same batch (rows inserted together may
	// reference each other); a delete must shrink later stages first so its
	// qualifying check still sees the pre-delete contents of earlier stages
	// (the contribution being removed was admitted by them). Either way the
	// result matches a full re-evaluation under referential integrity.
	if !insert {
		for i, j := 0, len(stages)-1; i < j; i, j = i+1, j-1 {
			stages[i], stages[j] = stages[j], stages[i]
		}
	}
	for _, stage := range stages {
		if err := p.applyChangeStage(tbl, table, stage, rows, insert); err != nil {
			return err
		}
	}
	return nil
}

// applyChangeStage applies one stage's incremental update for rows of tbl.
func (p *Predicate) applyChangeStage(tbl *relation.Table, table string, stage int, rows []int, insert bool) error {
	hops := p.Path.Hops
	outCol, ok := tbl.Schema().ColumnIndex(hops[stage].FromColumn)
	if !ok {
		return fmt.Errorf("induce: %s has no column %q", table, hops[stage].FromColumn)
	}
	if err := checkJoinColumnKind(tbl, outCol); err != nil {
		return err
	}
	var qualifies func(row int) bool
	if stage == 0 {
		match := predicate.Compile(p.SourceCut, tbl)
		qualifies = match
	} else {
		inCol, ok := tbl.Schema().ColumnIndex(hops[stage-1].ToColumn)
		if !ok {
			return fmt.Errorf("induce: %s has no column %q", table, hops[stage-1].ToColumn)
		}
		if err := checkJoinColumnKind(tbl, inCol); err != nil {
			return err
		}
		prev := p.stages[stage-1]
		qualifies = func(row int) bool { return prev.contains(tbl.Value(row, inCol)) }
	}
	set := p.mutableStage(stage)
	for _, r := range rows {
		if r < 0 || r >= tbl.NumRows() {
			return fmt.Errorf("induce: row %d out of range for %s", r, table)
		}
		if !qualifies(r) {
			continue
		}
		if insert {
			set.add(tbl.Value(r, outCol))
		} else {
			set.remove(tbl.Value(r, outCol))
		}
	}
	return nil
}
