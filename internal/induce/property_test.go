package induce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mto/internal/joingraph"
	"mto/internal/predicate"
	"mto/internal/relation"
	"mto/internal/value"
	"mto/internal/workload"
)

// TestIncrementalEqualsFullReevaluation is the §5.2 correctness property:
// applying inserts incrementally leaves the literal cut identical to a full
// re-evaluation from scratch, under referential integrity.
func TestIncrementalEqualsFullReevaluation(t *testing.T) {
	f := func(seed int64, nInsertDim, nInsertFact uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := relation.NewDataset()
		dim := relation.NewTable(relation.MustSchema("dim",
			relation.Column{Name: "id", Type: value.KindInt, Unique: true},
			relation.Column{Name: "attr", Type: value.KindInt},
		))
		nDim := 50 + rng.Intn(50)
		for i := 0; i < nDim; i++ {
			dim.MustAppendRow(value.Int(int64(i)), value.Int(int64(rng.Intn(10))))
		}
		mid := relation.NewTable(relation.MustSchema("mid",
			relation.Column{Name: "mkey", Type: value.KindInt, Unique: true},
			relation.Column{Name: "did", Type: value.KindInt},
		))
		nMid := 100 + rng.Intn(100)
		for i := 0; i < nMid; i++ {
			mid.MustAppendRow(value.Int(int64(i)), value.Int(int64(rng.Intn(nDim))))
		}
		ds.MustAddTable(dim)
		ds.MustAddTable(mid)

		path := joingraph.Path{Hops: []joingraph.Hop{
			{FromTable: "dim", FromColumn: "id", ToTable: "mid", ToColumn: "did", Type: workload.InnerJoin},
			{FromTable: "mid", FromColumn: "mkey", ToTable: "fact", ToColumn: "mk", Type: workload.InnerJoin},
		}}
		cut := predicate.NewComparison("attr", predicate.Lt, value.Int(int64(rng.Intn(10))))

		incremental := New(path, cut)
		if err := incremental.Evaluate(ds); err != nil {
			t.Fatal(err)
		}

		// Insert fresh dim rows (unique ids beyond existing) and mid rows
		// referencing any dim (old or new).
		var dimRows, midRows []int
		for i := 0; i < int(nInsertDim%16); i++ {
			dim.MustAppendRow(value.Int(int64(nDim+i)), value.Int(int64(rng.Intn(10))))
			dimRows = append(dimRows, dim.NumRows()-1)
		}
		for i := 0; i < int(nInsertFact%16); i++ {
			mid.MustAppendRow(value.Int(int64(nMid+i)), value.Int(int64(rng.Intn(nDim+len(dimRows)))))
			midRows = append(midRows, mid.NumRows()-1)
		}
		if err := incremental.ApplyInsert(ds, "dim", dimRows); err != nil {
			t.Fatal(err)
		}
		if err := incremental.ApplyInsert(ds, "mid", midRows); err != nil {
			t.Fatal(err)
		}

		fresh := New(path, cut)
		if err := fresh.Evaluate(ds); err != nil {
			t.Fatal(err)
		}
		if incremental.LiteralSize() != fresh.LiteralSize() {
			t.Logf("literal sizes differ: %d vs %d", incremental.LiteralSize(), fresh.LiteralSize())
			return false
		}
		// Compare membership over the whole key domain.
		for k := int64(0); k < int64(nMid)+16; k++ {
			if incremental.literal().containsInt(k) != fresh.literal().containsInt(k) {
				t.Logf("membership differs at key %d", k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDeleteThenReinsertIsIdentity checks that deleting contributions and
// re-adding the same rows restores the literal exactly.
func TestDeleteThenReinsertIsIdentity(t *testing.T) {
	ds := buildCBADataset(t)
	ip := New(cbaPath(), predicate.NewComparison("z", predicate.Gt, value.Int(200)))
	if err := ip.Evaluate(ds); err != nil {
		t.Fatal(err)
	}
	before := ip.literal().card()
	rows := []int{1, 3, 5}
	if err := ip.ApplyDelete(ds, "B", rows); err != nil {
		t.Fatal(err)
	}
	if err := ip.ApplyInsert(ds, "B", rows); err != nil {
		t.Fatal(err)
	}
	if got := ip.literal().card(); got != before {
		t.Errorf("delete+reinsert changed cardinality: %d → %d", before, got)
	}
}
