package induce

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"mto/internal/datagen"
	"mto/internal/joingraph"
	"mto/internal/predicate"
	"mto/internal/relation"
	"mto/internal/value"
	"mto/internal/workload"
)

// keySetElems extracts a key set's contents in sorted order for comparison.
func keySetElems(s *keySet) ([]int64, []string) {
	var ints []int64
	s.bm.ForEach(func(v uint32) bool {
		ints = append(ints, int64(v))
		return true
	})
	for k := range s.overflow {
		ints = append(ints, k)
	}
	sort.Slice(ints, func(i, j int) bool { return ints[i] < ints[j] })
	strs := make([]string, 0, len(s.strs))
	for k := range s.strs {
		strs = append(strs, k)
	}
	sort.Strings(strs)
	return ints, strs
}

// requireSameStages asserts the batched predicate's stages are literally
// identical to the scalar one's: per stage, cardinality, memory estimate,
// and every member.
func requireSameStages(t *testing.T, ctx string, batched, scalar *Predicate) {
	t.Helper()
	if len(batched.stages) != len(scalar.stages) {
		t.Fatalf("%s: stage count %d vs %d", ctx, len(batched.stages), len(scalar.stages))
	}
	for i := range batched.stages {
		b, s := batched.stages[i], scalar.stages[i]
		if b.card() != s.card() {
			t.Fatalf("%s: stage %d card %d vs %d", ctx, i, b.card(), s.card())
		}
		if b.memBytes() != s.memBytes() {
			t.Errorf("%s: stage %d memBytes %d vs %d", ctx, i, b.memBytes(), s.memBytes())
		}
		bi, bs := keySetElems(b)
		si, ss := keySetElems(s)
		if len(bi) != len(si) || len(bs) != len(ss) {
			t.Fatalf("%s: stage %d element counts differ", ctx, i)
		}
		for j := range bi {
			if bi[j] != si[j] {
				t.Fatalf("%s: stage %d int elem %d: %d vs %d", ctx, i, j, bi[j], si[j])
			}
		}
		for j := range bs {
			if bs[j] != ss[j] {
				t.Fatalf("%s: stage %d str elem %d: %q vs %q", ctx, i, j, bs[j], ss[j])
			}
		}
	}
}

func TestEvaluateAllSharesPrefixesAndMatchesScalar(t *testing.T) {
	ds := buildCBADataset(t)
	cut := predicate.NewComparison("z", predicate.Gt, value.Int(200))
	short := joingraph.Path{Hops: cbaPath().Hops[:1]} // C → B
	long := cbaPath()                                 // C → B → A

	p1 := New(short, cut)
	p2 := New(long, cut)
	p3 := New(long, predicate.NewComparison("z", predicate.Le, value.Int(200)))
	if err := EvaluateAll(ds, []*Predicate{p1, p2, p3}, 2); err != nil {
		t.Fatal(err)
	}
	// p1 and p2 share (source cut, first hop): stage 0 is one shared set.
	if p1.stages[0] != p2.stages[0] {
		t.Error("shared prefix should reuse one key set")
	}
	if !p1.stages[0].shared {
		t.Error("reused set should be marked shared")
	}
	// p3 has a different source cut: nothing shared.
	if p3.stages[0] == p1.stages[0] || p3.stages[0].shared {
		t.Error("distinct cut must not share stage sets")
	}

	for i, pair := range []struct {
		path joingraph.Path
		cut  predicate.Predicate
		got  *Predicate
	}{{short, cut, p1}, {long, cut, p2}, {long, p3.SourceCut, p3}} {
		ref := New(pair.path, pair.cut)
		if err := ref.Evaluate(ds); err != nil {
			t.Fatal(err)
		}
		requireSameStages(t, fmt.Sprintf("pred %d", i), pair.got, ref)
	}
}

// TestSharedStageCopyOnWrite pins the COW contract: incremental maintenance
// of one predicate must not leak into siblings sharing a stage set.
func TestSharedStageCopyOnWrite(t *testing.T) {
	ds := buildCBADataset(t)
	cut := predicate.NewComparison("z", predicate.Gt, value.Int(200))
	p1 := New(joingraph.Path{Hops: cbaPath().Hops[:1]}, cut)
	p2 := New(cbaPath(), cut)
	if err := EvaluateAll(ds, []*Predicate{p1, p2}, 1); err != nil {
		t.Fatal(err)
	}
	sharedBefore := p2.stages[0]
	cardBefore := sharedBefore.card()

	// Insert a C row satisfying the cut and apply it to p1 only.
	c := ds.Table("C")
	c.MustAppendRow(value.Int(6), value.Int(600))
	if err := p1.ApplyInsert(ds, "C", []int{c.NumRows() - 1}); err != nil {
		t.Fatal(err)
	}
	if p1.stages[0] == sharedBefore {
		t.Fatal("mutation should have cloned the shared set")
	}
	if p1.stages[0].card() != cardBefore+1 {
		t.Errorf("p1 stage 0 card = %d, want %d", p1.stages[0].card(), cardBefore+1)
	}
	if p2.stages[0] != sharedBefore || p2.stages[0].card() != cardBefore {
		t.Error("sibling's shared set was mutated")
	}
	// The clone itself is private now: further changes mutate in place.
	cloned := p1.stages[0]
	c.MustAppendRow(value.Int(7), value.Int(700))
	if err := p1.ApplyInsert(ds, "C", []int{c.NumRows() - 1}); err != nil {
		t.Fatal(err)
	}
	if p1.stages[0] != cloned {
		t.Error("private set should not be re-cloned")
	}
}

func TestEvaluateAllErrorsMatchScalar(t *testing.T) {
	ds := buildCBADataset(t)
	bad := []*Predicate{
		New(joingraph.Path{Hops: []joingraph.Hop{
			{FromTable: "ZZZ", FromColumn: "k", ToTable: "A", ToColumn: "bkey"},
		}}, predicate.True()),
		New(joingraph.Path{Hops: []joingraph.Hop{
			{FromTable: "C", FromColumn: "nope", ToTable: "B", ToColumn: "ckey"},
		}}, predicate.True()),
		New(joingraph.Path{Hops: []joingraph.Hop{
			{FromTable: "C", FromColumn: "ckey", ToTable: "B", ToColumn: "ckey"},
			{FromTable: "ZZZ", FromColumn: "bkey", ToTable: "A", ToColumn: "bkey"},
		}}, predicate.True()),
	}
	for i, p := range bad {
		ref := New(p.Path, p.SourceCut)
		refErr := ref.Evaluate(ds)
		if refErr == nil {
			t.Fatalf("case %d: scalar accepted bad predicate", i)
		}
		gotErr := EvaluateAll(ds, []*Predicate{New(p.Path, p.SourceCut)}, 1)
		if gotErr == nil || gotErr.Error() != refErr.Error() {
			t.Errorf("case %d: batched err %v, scalar err %v", i, gotErr, refErr)
		}
	}
	// On error, no input predicate is left half-evaluated.
	p := New(bad[2].Path, bad[2].SourceCut)
	if err := EvaluateAll(ds, []*Predicate{p}, 1); err == nil || p.Evaluated() {
		t.Error("failed EvaluateAll must leave predicates unevaluated")
	}
	// Empty input is a no-op.
	if err := EvaluateAll(ds, nil, 4); err != nil {
		t.Error(err)
	}
}

// uniqueFromDS mirrors core.UniqueFromDataset without importing core.
func uniqueFromDS(ds *relation.Dataset) joingraph.UniqueFn {
	return func(table, column string) bool {
		t := ds.Table(table)
		return t != nil && t.Schema().IsUnique(column)
	}
}

// flattenSorted flattens FromWorkload output deterministically.
func flattenSorted(byTable map[string][]*Predicate) []*Predicate {
	var targets []string
	for name := range byTable {
		targets = append(targets, name)
	}
	sort.Strings(targets)
	var out []*Predicate
	for _, name := range targets {
		out = append(out, byTable[name]...)
	}
	return out
}

// TestEvaluateAllIdentityWorkloads is the cross-implementation identity
// property: over the SSB, TPC-H, and TPC-DS workloads, at sample rates
// {1, 0.1} and parallelism {1, 4, GOMAXPROCS}, batched evaluation produces
// stages literally identical to the scalar reference.
func TestEvaluateAllIdentityWorkloads(t *testing.T) {
	cases := []struct {
		name string
		ds   *relation.Dataset
		w    *workload.Workload
	}{
		{"ssb", datagen.SSB(datagen.SSBConfig{ScaleFactor: 0.002, Seed: 1}), datagen.SSBWorkload(1)},
		{"tpch", datagen.TPCH(datagen.TPCHConfig{ScaleFactor: 0.002, Seed: 1}), datagen.TPCHWorkload(1, 1)},
		{"tpcds", datagen.TPCDS(datagen.TPCDSConfig{ScaleFactor: 0.002, Seed: 1}), datagen.TPCDSWorkload(1)},
	}
	parallelisms := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		preds := flattenSorted(FromWorkload(tc.w, uniqueFromDS(tc.ds), 4))
		if len(preds) == 0 {
			t.Fatalf("%s: workload induced no predicates", tc.name)
		}
		for _, rate := range []float64{1, 0.1} {
			evalDS := tc.ds
			if rate < 1 {
				evalDS, _ = tc.ds.Sample(rate, 1000, rand.New(rand.NewSource(42)))
			}
			// Scalar reference, evaluated once per (workload, rate).
			refs := make([]*Predicate, len(preds))
			for i, p := range preds {
				refs[i] = New(p.Path, p.SourceCut)
				if err := refs[i].Evaluate(evalDS); err != nil {
					t.Fatal(err)
				}
			}
			for _, par := range parallelisms {
				batched := make([]*Predicate, len(preds))
				for i, p := range preds {
					batched[i] = New(p.Path, p.SourceCut)
				}
				if err := EvaluateAll(evalDS, batched, par); err != nil {
					t.Fatal(err)
				}
				for i := range preds {
					ctx := fmt.Sprintf("%s rate=%g par=%d pred=%d %s",
						tc.name, rate, par, i, preds[i])
					requireSameStages(t, ctx, batched[i], refs[i])
				}
			}
		}
	}
}
