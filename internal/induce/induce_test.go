package induce

import (
	"strings"
	"testing"

	"mto/internal/joingraph"
	"mto/internal/predicate"
	"mto/internal/relation"
	"mto/internal/value"
	"mto/internal/workload"
)

// buildCBADataset reproduces the paper's Table 1 running example: a chain
// C →CKEY B →BKEY A where C is the dimension-most table.
func buildCBADataset(t *testing.T) *relation.Dataset {
	t.Helper()
	ds := relation.NewDataset()

	c := relation.NewTable(relation.MustSchema("C",
		relation.Column{Name: "ckey", Type: value.KindInt, Unique: true},
		relation.Column{Name: "z", Type: value.KindInt},
	))
	// ckey 1..5, z = 100*ckey → z > 200 selects ckeys {3,4,5}.
	for i := int64(1); i <= 5; i++ {
		c.MustAppendRow(value.Int(i), value.Int(100*i))
	}

	b := relation.NewTable(relation.MustSchema("B",
		relation.Column{Name: "bkey", Type: value.KindInt, Unique: true},
		relation.Column{Name: "ckey", Type: value.KindInt},
	))
	// bkey 1..10 references ckey = (bkey mod 5) + 1.
	for i := int64(1); i <= 10; i++ {
		b.MustAppendRow(value.Int(i), value.Int(i%5+1))
	}

	a := relation.NewTable(relation.MustSchema("A",
		relation.Column{Name: "akey", Type: value.KindInt, Unique: true},
		relation.Column{Name: "bkey", Type: value.KindInt},
	))
	// akey 1..20 references bkey = (akey mod 10) + 1.
	for i := int64(1); i <= 20; i++ {
		a.MustAppendRow(value.Int(i), value.Int(i%10+1))
	}

	ds.MustAddTable(c)
	ds.MustAddTable(b)
	ds.MustAddTable(a)
	return ds
}

func cbaPath() joingraph.Path {
	return joingraph.Path{Hops: []joingraph.Hop{
		{FromTable: "C", FromColumn: "ckey", ToTable: "B", ToColumn: "ckey", Type: workload.InnerJoin},
		{FromTable: "B", FromColumn: "bkey", ToTable: "A", ToColumn: "bkey", Type: workload.InnerJoin},
	}}
}

func TestEvaluateChain(t *testing.T) {
	ds := buildCBADataset(t)
	ip := New(cbaPath(), predicate.NewComparison("z", predicate.Gt, value.Int(200)))
	if ip.Evaluated() {
		t.Fatal("fresh predicate should be unevaluated")
	}
	if err := ip.Evaluate(ds); err != nil {
		t.Fatal(err)
	}
	if !ip.Evaluated() {
		t.Fatal("Evaluate did not materialize")
	}
	// z > 200 → ckeys {3,4,5} → B rows with ckey∈{3,4,5}: bkeys where
	// bkey%5+1 ∈ {3,4,5} → bkey ∈ {2,3,4,7,8,9}.
	wantB := map[int64]bool{2: true, 3: true, 4: true, 7: true, 8: true, 9: true}
	if ip.LiteralSize() != len(wantB) {
		t.Fatalf("literal size = %d, want %d", ip.LiteralSize(), len(wantB))
	}
	// Rows of A whose bkey is in the set match.
	a := ds.Table("A")
	fast := ip.CompileRow(a)
	for r := 0; r < a.NumRows(); r++ {
		bkey := a.ValueByName(r, "bkey").Int()
		want := wantB[bkey]
		if got := ip.MatchesRow(a, r); got != want {
			t.Errorf("row %d (bkey=%d) MatchesRow = %v, want %v", r, bkey, got, want)
		}
		if got := fast(r); got != want {
			t.Errorf("row %d CompileRow = %v, want %v", r, got, want)
		}
	}
	if ip.Target() != "A" || ip.TargetColumn() != "bkey" || ip.Depth() != 2 {
		t.Error("metadata wrong")
	}
	if ip.MemBytes() <= 0 {
		t.Error("MemBytes should be positive")
	}
}

func TestStringRendersNestedSubqueries(t *testing.T) {
	ip := New(cbaPath(), predicate.NewComparison("z", predicate.Gt, value.Int(200)))
	s := ip.String()
	want := "A.bkey IN (SELECT B.bkey FROM B WHERE B.ckey IN (SELECT C.ckey FROM C WHERE z > 200))"
	if s != want {
		t.Errorf("String =\n%q\nwant\n%q", s, want)
	}
}

func TestCA(t *testing.T) {
	ip := New(cbaPath(), predicate.True())
	if got := ip.CA(0.1); got < 0.0099 || got > 0.0101 {
		t.Errorf("CA(0.1) depth 2 = %g, want ≈0.01", got)
	}
	one := New(joingraph.Path{Hops: cbaPath().Hops[:1]}, predicate.True())
	if got := one.CA(0.1); got != 0.1 {
		t.Errorf("CA(0.1) depth 1 = %g", got)
	}
}

func TestUnevaluatedPanics(t *testing.T) {
	ip := New(cbaPath(), predicate.True())
	defer func() {
		if recover() == nil {
			t.Error("literal access before Evaluate should panic")
		}
	}()
	ip.MatchesRow(relation.NewTable(relation.MustSchema("A",
		relation.Column{Name: "bkey", Type: value.KindInt})), 0)
}

func TestEvaluateErrors(t *testing.T) {
	ds := buildCBADataset(t)
	badSrc := New(joingraph.Path{Hops: []joingraph.Hop{
		{FromTable: "ZZZ", FromColumn: "k", ToTable: "A", ToColumn: "bkey"},
	}}, predicate.True())
	if err := badSrc.Evaluate(ds); err == nil {
		t.Error("missing source accepted")
	}
	badCol := New(joingraph.Path{Hops: []joingraph.Hop{
		{FromTable: "C", FromColumn: "nope", ToTable: "B", ToColumn: "ckey"},
	}}, predicate.True())
	if err := badCol.Evaluate(ds); err == nil {
		t.Error("missing source column accepted")
	}
	badMid := New(joingraph.Path{Hops: []joingraph.Hop{
		{FromTable: "C", FromColumn: "ckey", ToTable: "B", ToColumn: "ckey"},
		{FromTable: "ZZZ", FromColumn: "bkey", ToTable: "A", ToColumn: "bkey"},
	}}, predicate.True())
	if err := badMid.Evaluate(ds); err == nil {
		t.Error("missing intermediate table accepted")
	}
}

func TestApplyInsert(t *testing.T) {
	// Mirrors Fig. 9: inserting into the middle table B extends the
	// literal cut on A without touching other stages.
	ds := buildCBADataset(t)
	ip := New(cbaPath(), predicate.NewComparison("z", predicate.Gt, value.Int(200)))
	if err := ip.Evaluate(ds); err != nil {
		t.Fatal(err)
	}
	sizeBefore := ip.LiteralSize()

	b := ds.Table("B")
	// New B rows: bkey=11 references ckey=3 (selected), bkey=12 references
	// ckey=1 (not selected).
	b.MustAppendRow(value.Int(11), value.Int(3))
	b.MustAppendRow(value.Int(12), value.Int(1))
	if err := ip.ApplyInsert(ds, "B", []int{10, 11}); err != nil {
		t.Fatal(err)
	}
	if got := ip.LiteralSize(); got != sizeBefore+1 {
		t.Errorf("literal size after insert = %d, want %d", got, sizeBefore+1)
	}
	// A row referencing bkey=11 now matches.
	a := ds.Table("A")
	a.MustAppendRow(value.Int(21), value.Int(11))
	if !ip.MatchesRow(a, a.NumRows()-1) {
		t.Error("new A row referencing inserted B key should match")
	}

	// Inserting into the source table C.
	c := ds.Table("C")
	c.MustAppendRow(value.Int(6), value.Int(600)) // satisfies z > 200
	if err := ip.ApplyInsert(ds, "C", []int{5}); err != nil {
		t.Fatal(err)
	}
	// No B row references ckey=6 yet (referential integrity), so the
	// literal cut is unchanged.
	if got := ip.LiteralSize(); got != sizeBefore+1 {
		t.Errorf("literal size after source insert = %d", got)
	}
	// Changes to tables off the path (the target) are no-ops.
	if err := ip.ApplyInsert(ds, "A", []int{0}); err != nil {
		t.Error("target-table insert should be a no-op, got", err)
	}
	// Out-of-range rows error.
	if err := ip.ApplyInsert(ds, "B", []int{999}); err == nil {
		t.Error("out-of-range row accepted")
	}
	// Unevaluated predicates reject incremental updates.
	fresh := New(cbaPath(), predicate.True())
	if err := fresh.ApplyInsert(ds, "B", nil); err == nil {
		t.Error("unevaluated ApplyInsert accepted")
	}
}

func TestApplyDelete(t *testing.T) {
	ds := buildCBADataset(t)
	ip := New(cbaPath(), predicate.NewComparison("z", predicate.Gt, value.Int(200)))
	if err := ip.Evaluate(ds); err != nil {
		t.Fatal(err)
	}
	a := ds.Table("A")
	// Row of A referencing bkey=2 currently matches.
	var rowBkey2 = -1
	for r := 0; r < a.NumRows(); r++ {
		if a.ValueByName(r, "bkey").Int() == 2 {
			rowBkey2 = r
			break
		}
	}
	if rowBkey2 < 0 || !ip.MatchesRow(a, rowBkey2) {
		t.Fatal("setup: expected bkey=2 to match")
	}
	// Delete the B row with bkey=2 (B row index 1 has bkey=2).
	b := ds.Table("B")
	if b.ValueByName(1, "bkey").Int() != 2 {
		t.Fatal("setup: B row 1 should have bkey=2")
	}
	if err := ip.ApplyDelete(ds, "B", []int{1}); err != nil {
		t.Fatal(err)
	}
	if ip.MatchesRow(a, rowBkey2) {
		t.Error("deleted B key should no longer match")
	}
}

func TestAffectedBy(t *testing.T) {
	ds := buildCBADataset(t)
	ip := New(cbaPath(), predicate.True())
	if ip.AffectedBy("B") {
		t.Error("unevaluated predicate should not report affected")
	}
	if err := ip.Evaluate(ds); err != nil {
		t.Fatal(err)
	}
	if !ip.AffectedBy("C") || !ip.AffectedBy("B") {
		t.Error("path tables should affect the cut")
	}
	if ip.AffectedBy("A") {
		t.Error("the target table does not affect its own cut")
	}
	if ip.AffectedBy("other") {
		t.Error("unrelated tables should not affect")
	}
}

// TestApplyChangeSelfJoinUpdatesAllStages is the regression for incremental
// maintenance on paths where one base table occupies several stages: a
// self-join maps two aliases to the same base table (joingraph only forbids
// revisiting an alias), so a data change to it must update every matching
// stage, not just the first.
func TestApplyChangeSelfJoinUpdatesAllStages(t *testing.T) {
	ds := relation.NewDataset()
	emp := relation.NewTable(relation.MustSchema("emp",
		relation.Column{Name: "id", Type: value.KindInt, Unique: true},
		relation.Column{Name: "mgr", Type: value.KindInt},
		relation.Column{Name: "sal", Type: value.KindInt},
	))
	// ids 1..6; 1..3 are managers (mgr=0), 4..6 report to 1..3; managers 2
	// and 3 earn > 100.
	for i := int64(1); i <= 3; i++ {
		emp.MustAppendRow(value.Int(i), value.Int(0), value.Int(50+50*i))
	}
	for i := int64(4); i <= 6; i++ {
		emp.MustAppendRow(value.Int(i), value.Int(i-3), value.Int(10))
	}
	task := relation.NewTable(relation.MustSchema("task",
		relation.Column{Name: "tid", Type: value.KindInt, Unique: true},
		relation.Column{Name: "eid", Type: value.KindInt},
	))
	for i := int64(1); i <= 6; i++ {
		task.MustAppendRow(value.Int(i), value.Int(i))
	}
	ds.MustAddTable(emp)
	ds.MustAddTable(task)

	// "task.eid IN (employees whose manager earns > 100)": emp appears as
	// the scanned table of both stage 0 (as the manager alias) and stage 1
	// (as the report alias).
	path := joingraph.Path{Hops: []joingraph.Hop{
		{FromTable: "emp", FromColumn: "id", ToTable: "emp", ToColumn: "mgr", Type: workload.InnerJoin},
		{FromTable: "emp", FromColumn: "id", ToTable: "task", ToColumn: "eid", Type: workload.InnerJoin},
	}}
	cut := predicate.NewComparison("sal", predicate.Gt, value.Int(100))
	ip := New(path, cut)
	if err := ip.Evaluate(ds); err != nil {
		t.Fatal(err)
	}
	// Managers 2,3 match the cut → reports 5,6 form the literal.
	if ip.LiteralSize() != 2 {
		t.Fatalf("setup literal = %d, want 2", ip.LiteralSize())
	}

	// Insert a new high-earning manager and, in the same batch, a report
	// referencing it. Both stages must pick the change up: stage 0 gains
	// id 7, stage 1 (probing the already-updated stage 0) gains id 8.
	emp.MustAppendRow(value.Int(7), value.Int(0), value.Int(500))
	emp.MustAppendRow(value.Int(8), value.Int(7), value.Int(10))
	rows := []int{emp.NumRows() - 2, emp.NumRows() - 1}
	if err := ip.ApplyInsert(ds, "emp", rows); err != nil {
		t.Fatal(err)
	}
	fresh := New(path, cut)
	if err := fresh.Evaluate(ds); err != nil {
		t.Fatal(err)
	}
	if ip.LiteralSize() != fresh.LiteralSize() {
		t.Fatalf("after insert: incremental literal = %d, full re-eval = %d",
			ip.LiteralSize(), fresh.LiteralSize())
	}
	for k := int64(1); k <= 10; k++ {
		if ip.literal().containsInt(k) != fresh.literal().containsInt(k) {
			t.Errorf("after insert: membership differs at key %d", k)
		}
	}

	// Deleting the same batch must restore the original literal: stage 1
	// is shrunk first (while stage 0 still holds the deleted manager), then
	// stage 0.
	if err := ip.ApplyDelete(ds, "emp", rows); err != nil {
		t.Fatal(err)
	}
	if ip.LiteralSize() != 2 || !ip.literal().containsInt(5) || !ip.literal().containsInt(6) {
		t.Errorf("after delete: literal = %d, want the original {5, 6}", ip.LiteralSize())
	}
}

// TestUnsupportedJoinColumnKind pins the keySet kind contract: evaluation
// rejects float join columns loudly instead of silently producing an empty
// (and therefore wrong) literal cut.
func TestUnsupportedJoinColumnKind(t *testing.T) {
	ds := relation.NewDataset()
	src := relation.NewTable(relation.MustSchema("src",
		relation.Column{Name: "fk", Type: value.KindFloat, Unique: true},
		relation.Column{Name: "x", Type: value.KindInt},
	))
	src.MustAppendRow(value.Float(1.5), value.Int(1))
	fact := relation.NewTable(relation.MustSchema("fact",
		relation.Column{Name: "fk", Type: value.KindFloat},
	))
	fact.MustAppendRow(value.Float(1.5))
	ds.MustAddTable(src)
	ds.MustAddTable(fact)

	path := joingraph.Path{Hops: []joingraph.Hop{
		{FromTable: "src", FromColumn: "fk", ToTable: "fact", ToColumn: "fk", Type: workload.InnerJoin},
	}}
	ip := New(path, predicate.NewComparison("x", predicate.Eq, value.Int(1)))
	scalarErr := ip.Evaluate(ds)
	if scalarErr == nil || !strings.Contains(scalarErr.Error(), "unsupported float join column src.fk") {
		t.Fatalf("scalar Evaluate error = %v, want unsupported-kind error", scalarErr)
	}
	if ip.Evaluated() {
		t.Error("failed Evaluate should not report evaluated")
	}
	batchErr := EvaluateAll(ds, []*Predicate{New(path, ip.SourceCut)}, 2)
	if batchErr == nil || batchErr.Error() != scalarErr.Error() {
		t.Errorf("batched error %v, scalar error %v", batchErr, scalarErr)
	}
}

func TestKeySetOverflowAndStrings(t *testing.T) {
	s := newKeySet()
	s.addInt(5)
	s.addInt(-7)      // below bitmap range
	s.addInt(1 << 40) // above bitmap range
	s.addStr("x")
	s.add(value.Null)     // ignored
	s.add(value.Float(1)) // ignored (join keys are int/string)
	if !s.containsInt(5) || !s.containsInt(-7) || !s.containsInt(1<<40) || !s.containsStr("x") {
		t.Error("membership wrong")
	}
	if s.contains(value.Null) || s.contains(value.Float(1)) {
		t.Error("null/float membership should be false")
	}
	if s.card() != 4 {
		t.Errorf("card = %d", s.card())
	}
	s.removeInt(-7)
	s.removeInt(5)
	s.removeStr("x")
	s.remove(value.Int(1 << 40))
	s.remove(value.Float(3)) // no-op
	if s.card() != 0 {
		t.Errorf("card after removes = %d", s.card())
	}
	if s.memBytes() < 0 {
		t.Error("memBytes negative")
	}
}

func TestFromWorkload(t *testing.T) {
	// Two-table star: dim(id unique) → fact(did).
	q1 := workload.NewQuery("q1",
		workload.TableRef{Table: "dim"},
		workload.TableRef{Table: "fact"},
	)
	q1.AddJoin("dim", "id", "fact", "did")
	q1.Filter("dim", predicate.NewComparison("x", predicate.Lt, value.Int(100)))
	q1.Filter("fact", predicate.NewComparison("y", predicate.Gt, value.Int(200)))

	// Second query repeats one predicate (dedup) and adds a new one.
	q2 := workload.NewQuery("q2",
		workload.TableRef{Table: "dim"},
		workload.TableRef{Table: "fact"},
	)
	q2.AddJoin("dim", "id", "fact", "did")
	q2.Filter("dim", predicate.NewAnd(
		predicate.NewComparison("x", predicate.Lt, value.Int(100)),
		predicate.NewComparison("w", predicate.Eq, value.Int(1)),
	))

	unique := func(table, col string) bool { return table == "dim" && col == "id" }
	w := workload.NewWorkload(q1, q2)
	byTarget := FromWorkload(w, unique, 4)

	// Only fact receives induced predicates (fact.did is not unique).
	if len(byTarget["dim"]) != 0 {
		t.Errorf("dim received induced predicates: %v", byTarget["dim"])
	}
	// fact gets: x<100 (deduped across q1,q2) and w=1 → 2 predicates.
	if len(byTarget["fact"]) != 2 {
		t.Fatalf("fact predicates = %d: %v", len(byTarget["fact"]), byTarget["fact"])
	}
	for _, ip := range byTarget["fact"] {
		if ip.Target() != "fact" || ip.TargetColumn() != "did" {
			t.Errorf("bad induced predicate %s", ip)
		}
		if !strings.Contains(ip.String(), "SELECT dim.id FROM dim") {
			t.Errorf("logical form wrong: %s", ip)
		}
	}
}
