// Package induce implements join-induced predicates (§4.1 of the paper):
// the logical form (a source cut plus an induction path), the literal form
// (an IN set over the target table's join column, evaluated via a chain of
// semi joins and compressed with roaring bitmaps), cardinality adjustment
// for sampled optimization (§4.2), and incremental maintenance under data
// changes (§5.2).
package induce

import (
	"mto/internal/bitmap"
	"mto/internal/value"
)

// keySet is a set of join-key values. Integer keys in [0, 2^32) live in a
// roaring bitmap (the paper compresses IN lists as Roaring Bitmaps,
// §4.1.2); integers outside that range spill to a map, and string keys use
// a map.
//
// Kind contract: join keys are ints or strings — the only kinds the engine's
// KeyIndex supports as well. add/remove/contains silently drop every other
// kind (null never matches an equijoin, so dropping nulls is the correct
// semi-join semantics); columns whose declared kind is unsupported (e.g.
// float join keys) are rejected with an error at Evaluate/ApplyInsert/
// ApplyDelete time, before any silent drop could produce an always-empty —
// and therefore wrong — literal cut.
type keySet struct {
	bm       *bitmap.Bitmap
	overflow map[int64]struct{}
	strs     map[string]struct{}

	// shared marks a set materialized once by batched evaluation and
	// referenced from the stages of several predicates (prefix sharing).
	// Mutators must go through (*Predicate).mutableStage, which clones a
	// shared set on first mutation so incremental maintenance of one
	// predicate never corrupts its siblings.
	shared bool
}

func newKeySet() *keySet { return &keySet{bm: bitmap.New()} }

// clone returns a private deep copy of s (clears the shared mark).
func (s *keySet) clone() *keySet {
	out := &keySet{bm: s.bm.Clone()}
	if s.overflow != nil {
		out.overflow = make(map[int64]struct{}, len(s.overflow))
		for k := range s.overflow {
			out.overflow[k] = struct{}{}
		}
	}
	if s.strs != nil {
		out.strs = make(map[string]struct{}, len(s.strs))
		for k := range s.strs {
			out.strs[k] = struct{}{}
		}
	}
	return out
}

func inBitmapRange(v int64) bool { return v >= 0 && v <= 1<<32-1 }

// denseSnapshot materializes the bitmap-resident members of s as a flat
// bitset sized to the largest member, for bulk probing. Returns nil when the
// set is empty or the bitset would exceed budgetWords — the caller then
// probes the compressed form directly. Overflow (out-of-range) integers are
// never in the snapshot; callers must still consult containsInt for values
// the snapshot cannot answer.
func (s *keySet) denseSnapshot(budgetWords int) bitmap.Dense {
	max, ok := s.bm.Max()
	if !ok {
		return nil
	}
	if int(max>>6)+1 > budgetWords {
		return nil
	}
	d := bitmap.NewDense(int(max) + 1)
	s.bm.FillDense(d)
	return d
}

func (s *keySet) addInt(v int64) {
	if inBitmapRange(v) {
		s.bm.Add(uint32(v))
		return
	}
	if s.overflow == nil {
		s.overflow = map[int64]struct{}{}
	}
	s.overflow[v] = struct{}{}
}

func (s *keySet) removeInt(v int64) {
	if inBitmapRange(v) {
		s.bm.Remove(uint32(v))
		return
	}
	delete(s.overflow, v)
}

func (s *keySet) containsInt(v int64) bool {
	if inBitmapRange(v) {
		return s.bm.Contains(uint32(v))
	}
	_, ok := s.overflow[v]
	return ok
}

func (s *keySet) addStr(v string) {
	if s.strs == nil {
		s.strs = map[string]struct{}{}
	}
	s.strs[v] = struct{}{}
}

func (s *keySet) removeStr(v string) { delete(s.strs, v) }

func (s *keySet) containsStr(v string) bool {
	_, ok := s.strs[v]
	return ok
}

// add inserts a typed value; nulls are ignored (equijoins never match null).
func (s *keySet) add(v value.Value) {
	switch v.Kind() {
	case value.KindInt:
		s.addInt(v.Int())
	case value.KindString:
		s.addStr(v.Str())
	}
}

// remove deletes a typed value.
func (s *keySet) remove(v value.Value) {
	switch v.Kind() {
	case value.KindInt:
		s.removeInt(v.Int())
	case value.KindString:
		s.removeStr(v.Str())
	}
}

// contains reports membership of a typed value; null is never a member.
func (s *keySet) contains(v value.Value) bool {
	switch v.Kind() {
	case value.KindInt:
		return s.containsInt(v.Int())
	case value.KindString:
		return s.containsStr(v.Str())
	default:
		return false
	}
}

// card returns the number of keys.
func (s *keySet) card() int {
	return s.bm.Cardinality() + len(s.overflow) + len(s.strs)
}

// optimize compacts the bitmap representation after bulk construction.
func (s *keySet) optimize() { s.bm.Optimize() }

// memBytes estimates the in-memory footprint (Table 2's memory column).
func (s *keySet) memBytes() int {
	n := s.bm.SizeBytes()
	n += 16 * len(s.overflow)
	for k := range s.strs {
		n += 16 + len(k)
	}
	return n
}
