package induce

import (
	"testing"

	"mto/internal/datagen"
)

// BenchmarkInduceEvaluate compares the batched work-sharing evaluator
// against the scalar reference on the TPC-H induction workload — the
// dominant cost of MTO's offline phase on join-heavy schemas (paper §6.3,
// Table 3). Both produce byte-identical stages; see
// TestEvaluateAllIdentityWorkloads.
func BenchmarkInduceEvaluate(b *testing.B) {
	ds := datagen.TPCH(datagen.TPCHConfig{ScaleFactor: 0.01, Seed: 1})
	w := datagen.TPCHWorkload(2, 1)
	preds := flattenSorted(FromWorkload(w, uniqueFromDS(ds), 4))
	if len(preds) == 0 {
		b.Fatal("workload induced no predicates")
	}

	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fresh := make([]*Predicate, len(preds))
			for j, p := range preds {
				fresh[j] = New(p.Path, p.SourceCut)
			}
			if err := EvaluateAll(ds, fresh, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range preds {
				fresh := New(p.Path, p.SourceCut)
				if err := fresh.Evaluate(ds); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
