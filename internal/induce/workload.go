package induce

import (
	"mto/internal/joingraph"
	"mto/internal/workload"
)

// FromWorkload performs §3.2.1 steps 1a–1b for every query: it extracts each
// simple predicate conjunct, passes it through every legal induction path
// (up to maxDepth joins, gated by unique), and collects the resulting
// join-induced predicates grouped by target base table. Duplicates — the
// same source cut pushed along the same path by different queries — are
// merged. The returned predicates are not yet evaluated (step 1c).
func FromWorkload(w *workload.Workload, unique joingraph.UniqueFn, maxDepth int) map[string][]*Predicate {
	out := map[string][]*Predicate{}
	seen := map[string]bool{}
	for _, q := range w.Queries {
		for _, alias := range q.Aliases() {
			filter, ok := q.Filters[alias]
			if !ok {
				continue
			}
			conjuncts := workload.SplitConjuncts(filter)
			if len(conjuncts) == 0 {
				continue
			}
			paths := joingraph.PathsFrom(q, alias, unique, maxDepth)
			for _, path := range paths {
				for _, cut := range conjuncts {
					ip := New(path, cut)
					key := ip.String()
					if seen[key] {
						continue
					}
					seen[key] = true
					out[ip.Target()] = append(out[ip.Target()], ip)
				}
			}
		}
	}
	return out
}
