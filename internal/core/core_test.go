package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"mto/internal/block"
	"mto/internal/engine"
	"mto/internal/layout"
	"mto/internal/predicate"
	"mto/internal/relation"
	"mto/internal/value"
	"mto/internal/workload"
)

// starDS builds dim(id unique, attr, grp) + fact(fid unique, did, v, d).
// fact.d correlates with fid; fact.did is uniform, so no single sort order
// helps dim-filtered join queries — the setting where MTO shines.
func starDS(t *testing.T, dims, factRows int, seed int64) *relation.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := relation.NewDataset()
	dim := relation.NewTable(relation.MustSchema("dim",
		relation.Column{Name: "id", Type: value.KindInt, Unique: true},
		relation.Column{Name: "attr", Type: value.KindInt},
		relation.Column{Name: "grp", Type: value.KindInt},
	))
	for i := 0; i < dims; i++ {
		dim.MustAppendRow(value.Int(int64(i)), value.Int(int64(i%10)), value.Int(int64(i%5)))
	}
	fact := relation.NewTable(relation.MustSchema("fact",
		relation.Column{Name: "fid", Type: value.KindInt, Unique: true},
		relation.Column{Name: "did", Type: value.KindInt},
		relation.Column{Name: "v", Type: value.KindInt},
		relation.Column{Name: "d", Type: value.KindInt},
	))
	for i := 0; i < factRows; i++ {
		fact.MustAppendRow(
			value.Int(int64(i)),
			value.Int(int64(rng.Intn(dims))),
			value.Int(int64(rng.Intn(1000))),
			value.Int(int64(i/100)),
		)
	}
	ds.MustAddTable(dim)
	ds.MustAddTable(fact)
	return ds
}

func attrQuery(id string, attr int64) *workload.Query {
	q := workload.NewQuery(id,
		workload.TableRef{Table: "dim"},
		workload.TableRef{Table: "fact"},
	)
	q.AddJoin("dim", "id", "fact", "did")
	q.Filter("dim", predicate.NewComparison("attr", predicate.Eq, value.Int(attr)))
	return q
}

func attrWorkload(n int) *workload.Workload {
	w := workload.NewWorkload()
	for k := 0; k < n; k++ {
		w.Add(attrQuery("attr"+string(rune('0'+k%10)), int64(k%10)))
	}
	return w
}

// totalBlocks runs every workload query through eng and sums blocks read.
func totalBlocks(t *testing.T, eng *engine.Engine, w *workload.Workload) int {
	t.Helper()
	total := 0
	for _, q := range w.Queries {
		res, err := eng.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		total += res.BlocksRead
	}
	return total
}

func install(t *testing.T, d *layout.Design) *block.Store {
	t.Helper()
	store := block.NewStore(block.DefaultCostModel())
	if _, err := d.Install(store, nil, 0); err != nil {
		t.Fatal(err)
	}
	return store
}

func TestMTOBeatsSTOBeatsBaseline(t *testing.T) {
	ds := starDS(t, 1000, 50000, 1)
	w := attrWorkload(10)
	blockSize := 1000

	// Baseline: fact sorted by date, dim by pk.
	base, err := layout.SortKeyDesign(ds, layout.SortKeys{"fact": "d", "dim": "id"}, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	baseStore := install(t, base)
	baseBlocks := totalBlocks(t, engine.New(baseStore, base, ds, engine.DefaultOptions()), w)

	// STO: instance-optimized without join induction.
	sto, err := Optimize(ds, w, Options{BlockSize: blockSize, JoinInduction: false})
	if err != nil {
		t.Fatal(err)
	}
	stoDesign, err := sto.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	stoStore := install(t, stoDesign)
	stoBlocks := totalBlocks(t, engine.New(stoStore, stoDesign, ds, engine.DefaultOptions()), w)

	// MTO: with join-induced cuts.
	mto, err := Optimize(ds, w, Options{BlockSize: blockSize, JoinInduction: true})
	if err != nil {
		t.Fatal(err)
	}
	if mto.Name() != "MTO" || sto.Name() != "STO" {
		t.Error("names wrong")
	}
	mtoDesign, err := mto.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	mtoStore := install(t, mtoDesign)
	mtoBlocks := totalBlocks(t, engine.New(mtoStore, mtoDesign, ds, engine.DefaultOptions()), w)

	t.Logf("blocks: baseline=%d sto=%d mto=%d", baseBlocks, stoBlocks, mtoBlocks)
	// The workload filters only dim attributes: STO cannot block the fact
	// table at all, Baseline's sort doesn't help, and MTO's join-induced
	// cuts should cut fact accesses dramatically.
	if !(mtoBlocks < stoBlocks) || !(mtoBlocks < baseBlocks) {
		t.Fatalf("MTO (%d) should beat STO (%d) and Baseline (%d)", mtoBlocks, stoBlocks, baseBlocks)
	}
	if float64(mtoBlocks) > 0.5*float64(baseBlocks) {
		t.Errorf("MTO reduction too weak: %d vs %d", mtoBlocks, baseBlocks)
	}

	// Correctness: surviving rows identical across all three layouts.
	q := w.Queries[0]
	rb, _ := engine.New(baseStore, base, ds, engine.DefaultOptions()).Execute(q)
	rs, _ := engine.New(stoStore, stoDesign, ds, engine.DefaultOptions()).Execute(q)
	rm, _ := engine.New(mtoStore, mtoDesign, ds, engine.DefaultOptions()).Execute(q)
	for alias, n := range rb.SurvivingRows {
		if rs.SurvivingRows[alias] != n || rm.SurvivingRows[alias] != n {
			t.Errorf("alias %s: surviving rows differ across layouts", alias)
		}
	}

	// Stats: MTO's tree uses induced cuts; STO's does not.
	if mto.Stats().InducedCuts == 0 {
		t.Error("MTO should use induced cuts")
	}
	if sto.Stats().InducedCuts != 0 {
		t.Error("STO must not use induced cuts")
	}
	if mto.Stats().MemBytes <= 0 {
		t.Error("stats memory should be positive")
	}
	if mto.Timings().OptimizeSeconds <= 0 {
		t.Error("optimization timing missing")
	}
	if len(mto.TableStats()) != 2 {
		t.Error("TableStats incomplete")
	}
	if mto.Tree("fact") == nil || mto.Tree("nope") != nil {
		t.Error("Tree lookup wrong")
	}
	if mto.Dataset() != ds || mto.Workload() != w {
		t.Error("accessors wrong")
	}
}

func TestOptimizeValidation(t *testing.T) {
	ds := starDS(t, 10, 100, 2)
	w := attrWorkload(2)
	if _, err := Optimize(ds, w, Options{BlockSize: 0}); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := Optimize(ds, w, Options{BlockSize: 10, SampleRate: 2}); err == nil {
		t.Error("bad sample rate accepted")
	}
	bad := workload.NewWorkload(workload.NewQuery("x", workload.TableRef{}))
	if _, err := Optimize(ds, bad, Options{BlockSize: 10}); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestSampledOptimization(t *testing.T) {
	ds := starDS(t, 1000, 50000, 3)
	w := attrWorkload(10)
	blockSize := 1000

	full, err := Optimize(ds, w, Options{BlockSize: blockSize, JoinInduction: true})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Optimize(ds, w, Options{
		BlockSize: blockSize, JoinInduction: true, SampleRate: 0.2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	fd, err := full.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	sd, err := sampled.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	fullBlocks := totalBlocks(t, engine.New(install(t, fd), fd, ds, engine.DefaultOptions()), w)
	sampBlocks := totalBlocks(t, engine.New(install(t, sd), sd, ds, engine.DefaultOptions()), w)
	t.Logf("blocks: full=%d sampled=%d", fullBlocks, sampBlocks)
	// Sampled optimization with CA should land within 2× of the full build.
	if float64(sampBlocks) > 2*float64(fullBlocks)+1 {
		t.Errorf("sampled layout too weak: %d vs %d", sampBlocks, fullBlocks)
	}
	// The sampled build must still route *all* records (on the full data).
	if err := install(t, sd).Layout("fact").Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReorgAfterWorkloadShift(t *testing.T) {
	ds := starDS(t, 1000, 50000, 4)
	blockSize := 1000
	// Train on attr queries; shift to grp queries.
	trainW := attrWorkload(10)
	shiftW := workload.NewWorkload()
	for k := int64(0); k < 5; k++ {
		q := workload.NewQuery("grp"+string(rune('0'+k)),
			workload.TableRef{Table: "dim"},
			workload.TableRef{Table: "fact"},
		)
		q.AddJoin("dim", "id", "fact", "did")
		q.Filter("dim", predicate.NewComparison("grp", predicate.Eq, value.Int(k)))
		shiftW.Add(q)
	}

	mto, err := Optimize(ds, trainW, Options{BlockSize: blockSize, JoinInduction: true})
	if err != nil {
		t.Fatal(err)
	}
	design, err := mto.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	store := install(t, design)
	before := totalBlocks(t, engine.New(store, design, ds, engine.DefaultOptions()), shiftW)

	// q=100, w=100 ⇒ q/w=1: reward can never be positive (B ≤ C), so no
	// reorganization happens (§5.1.2).
	lowQ, err := mto.PlanReorg(shiftW, ReorgConfig{Q: 100, W: 100}, design)
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range lowQ {
		if plan.TotalReward > 0 || plan.BlocksToRewrite != 0 {
			t.Errorf("q=w should never reorganize: %+v", plan)
		}
	}

	// Large q: reorganize.
	plans, err := mto.PlanReorg(shiftW, ReorgConfig{Q: 10000, W: 100}, design)
	if err != nil {
		t.Fatal(err)
	}
	factPlan := plans["fact"]
	if factPlan == nil || factPlan.TotalReward <= 0 {
		t.Fatalf("expected positive reward on fact, got %+v", factPlan)
	}
	if factPlan.SubtreesConsidered == 0 || factPlan.SubtreesConsidered > factPlan.SubtreesTotal {
		t.Errorf("subtree accounting wrong: %+v", factPlan)
	}
	if factPlan.PlanSeconds < 0 {
		t.Error("plan timing missing")
	}

	stats, err := mto.ApplyReorg(plans, design, store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsMoved == 0 || stats.BlocksRewritten == 0 || stats.FracDataReorganized <= 0 {
		t.Fatalf("reorg stats = %+v", stats)
	}
	if stats.SimSeconds <= 0 {
		t.Error("reorg cost missing")
	}
	// Layout still valid and performance improved on the new workload.
	if err := store.Layout("fact").Validate(); err != nil {
		t.Fatal(err)
	}
	after := totalBlocks(t, engine.New(store, design, ds, engine.DefaultOptions()), shiftW)
	t.Logf("shift workload blocks: before=%d after=%d", before, after)
	if after >= before {
		t.Errorf("reorg did not help: %d → %d", before, after)
	}
}

func TestReorgFullWithInfiniteQ(t *testing.T) {
	ds := starDS(t, 500, 20000, 5)
	blockSize := 1000
	mto, err := Optimize(ds, attrWorkload(5), Options{BlockSize: blockSize, JoinInduction: true})
	if err != nil {
		t.Fatal(err)
	}
	design, err := mto.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	install(t, design)
	shift := workload.NewWorkload()
	q := workload.NewQuery("v", workload.TableRef{Table: "fact"})
	q.Filter("fact", predicate.NewComparison("v", predicate.Lt, value.Int(100)))
	shift.Add(q)

	plans, err := mto.PlanReorg(shift, ReorgConfig{Q: math.Inf(1), W: 100}, design)
	if err != nil {
		t.Fatal(err)
	}
	if plans["fact"].TotalReward <= 0 {
		t.Fatal("infinite q should always reorganize something")
	}
	// With pruning disabled the same (or better) reward is found, at the
	// cost of considering every subtree.
	noPrune, err := mto.PlanReorg(shift, ReorgConfig{Q: math.Inf(1), W: 100, DisablePruning: true}, design)
	if err != nil {
		t.Fatal(err)
	}
	if noPrune["fact"].SubtreesConsidered < plans["fact"].SubtreesConsidered {
		t.Error("pruning should not consider more subtrees than exhaustive")
	}
	if noPrune["fact"].TotalReward < plans["fact"].TotalReward-1e-9 {
		t.Error("pruned search missed reward found by exhaustive search")
	}
}

func TestApplyInsert(t *testing.T) {
	// Build on a truncated fact table, then insert the rest (Fig. 14b).
	dims, factRows := 500, 20000
	ds := starDS(t, dims, factRows, 6)
	fact := ds.Table("fact")

	// Re-create a dataset with only the first 60% of fact rows.
	partial := relation.NewDataset()
	partial.MustAddTable(ds.Table("dim"))
	pf := relation.NewTable(fact.Schema())
	cutoff := factRows * 6 / 10
	for r := 0; r < cutoff; r++ {
		pf.MustAppendRow(fact.Row(r)...)
	}
	partial.MustAddTable(pf)

	w := attrWorkload(10)
	mto, err := Optimize(partial, w, Options{BlockSize: 1000, JoinInduction: true})
	if err != nil {
		t.Fatal(err)
	}
	design, err := mto.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	store := install(t, design)

	// Insert the remaining rows into the same base table.
	var newRows []int
	for r := cutoff; r < factRows; r++ {
		pf.MustAppendRow(fact.Row(r)...)
		newRows = append(newRows, pf.NumRows()-1)
	}
	stats, err := mto.ApplyInsert("fact", newRows, design, store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsRouted != len(newRows) {
		t.Errorf("routed %d of %d rows", stats.RowsRouted, len(newRows))
	}
	if stats.BlocksWritten == 0 || stats.SimSeconds <= 0 {
		t.Errorf("insert stats = %+v", stats)
	}
	// fact is the target of induced cuts, never on their paths, so no cut
	// updates happen for fact inserts in this schema.
	if stats.CutsUpdated != 0 {
		t.Errorf("fact inserts should not update cuts here, got %d", stats.CutsUpdated)
	}
	if err := store.Layout("fact").Validate(); err != nil {
		t.Fatal(err)
	}
	// Queries still benefit from the layout: blocks read stay below total.
	eng := engine.New(store, design, partial, engine.DefaultOptions())
	res, err := eng.Execute(w.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.PerTable["fact"].BlocksRead >= res.PerTable["fact"].TotalBlocks {
		t.Error("layout lost all skipping after insert")
	}

	// Inserting into dim (on induction paths) updates cuts.
	dim := partial.Table("dim")
	dim.MustAppendRow(value.Int(int64(dims)), value.Int(0), value.Int(0))
	dstats, err := mto.ApplyInsert("dim", []int{dim.NumRows() - 1}, design, store)
	if err != nil {
		t.Fatal(err)
	}
	if dstats.CutsUpdated == 0 {
		t.Error("dim insert should update induced cuts")
	}

	// Delete maintenance is exposed for the cut side.
	del, err := mto.UpdateCutsForDelete("dim", []int{dim.NumRows() - 1})
	if err != nil {
		t.Fatal(err)
	}
	if del.CutsUpdated == 0 {
		t.Error("dim delete should update induced cuts")
	}
	// Errors.
	if _, err := mto.ApplyInsert("nope", nil, design, store); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestUniqueRestrictionAblation(t *testing.T) {
	// A workload filtering the FACT table with fact→dim joins: under the
	// unique restriction no induction into dim is possible (fact.did is
	// not unique), so dim's tree has no induced cuts; the ablation allows
	// them. fact.v must correlate with did so the induced literal on dim
	// is selective enough to be a useful cut.
	ds := relation.NewDataset()
	dim := relation.NewTable(relation.MustSchema("dim",
		relation.Column{Name: "id", Type: value.KindInt, Unique: true},
	))
	for i := 0; i < 1000; i++ {
		dim.MustAppendRow(value.Int(int64(i)))
	}
	fact := relation.NewTable(relation.MustSchema("fact",
		relation.Column{Name: "did", Type: value.KindInt},
		relation.Column{Name: "v", Type: value.KindInt},
	))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		did := int64(rng.Intn(1000))
		fact.MustAppendRow(value.Int(did), value.Int(did)) // v == did
	}
	ds.MustAddTable(dim)
	ds.MustAddTable(fact)

	w := workload.NewWorkload()
	for k := int64(1); k <= 5; k++ {
		q := workload.NewQuery("f"+string(rune('0'+k)),
			workload.TableRef{Table: "dim"},
			workload.TableRef{Table: "fact"},
		)
		q.AddJoin("dim", "id", "fact", "did")
		q.Filter("fact", predicate.NewComparison("v", predicate.Lt, value.Int(k*150)))
		w.Add(q)
	}
	restricted, err := Optimize(ds, w, Options{BlockSize: 100, JoinInduction: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := restricted.Tree("dim").Stats().InducedCuts; got != 0 {
		t.Errorf("restricted build has %d induced cuts on dim", got)
	}
	ablated, err := Optimize(ds, w, Options{
		BlockSize: 100, JoinInduction: true, DisableUniqueRestriction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ablated.Tree("dim").Stats().InducedCuts; got == 0 {
		t.Error("ablated build should induce into dim")
	}
}

// TestLayoutIdentityAcrossParallelism pins the determinism contract of the
// whole offline phase: with join induction and sampling on, the learned
// layout — tree JSON and block assignments — is byte-identical at any
// Parallelism setting. This exercises the batched induced-predicate
// evaluator, the bounded per-table build fan-out, and the parallel
// re-evaluation of induced cuts over the full dataset.
func TestLayoutIdentityAcrossParallelism(t *testing.T) {
	ds1 := starDS(t, 50, 4000, 3)
	ds8 := starDS(t, 50, 4000, 3)
	w := attrWorkload(6)
	opts := Options{
		BlockSize: 200, JoinInduction: true, SampleRate: 0.3, Seed: 11,
	}
	opts1, opts8 := opts, opts
	opts1.Parallelism = 1
	opts8.Parallelism = 8

	o1, err := Optimize(ds1, w, opts1)
	if err != nil {
		t.Fatal(err)
	}
	o8, err := Optimize(ds8, w, opts8)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := o1.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	d8, err := o8.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"dim", "fact"} {
		j1, err := json.Marshal(o1.Tree(table))
		if err != nil {
			t.Fatal(err)
		}
		j8, err := json.Marshal(o8.Tree(table))
		if err != nil {
			t.Fatal(err)
		}
		if string(j1) != string(j8) {
			t.Errorf("%s: tree JSON differs between Parallelism 1 and 8", table)
		}
		g1, g8 := d1.Table(table).Groups(), d8.Table(table).Groups()
		if len(g1) != len(g8) {
			t.Fatalf("%s: %d groups vs %d", table, len(g1), len(g8))
		}
		for i := range g1 {
			if len(g1[i]) != len(g8[i]) {
				t.Fatalf("%s: group %d size %d vs %d", table, i, len(g1[i]), len(g8[i]))
			}
			for j := range g1[i] {
				if g1[i][j] != g8[i][j] {
					t.Fatalf("%s: group %d row %d: %d vs %d", table, i, j, g1[i][j], g8[i][j])
				}
			}
		}
	}
}
