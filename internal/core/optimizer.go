// Package core implements MTO, the multi-table layout optimizer (§3–§5 of
// the paper). Offline, it learns one qd-tree per table from a dataset and a
// join-query workload, passing simple predicates through joins as
// join-induced predicates (§3.2.1); online, the per-table trees route
// queries to the block subsets they must read (§3.2.2). The package also
// implements the single-table ablation STO (MTO without join induction,
// §6.1.3), partial reorganization under workload shift (§5.1), and
// incremental maintenance under data changes (§5.2).
package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"mto/internal/induce"
	"mto/internal/joingraph"
	"mto/internal/layout"
	"mto/internal/qdtree"
	"mto/internal/relation"
	"mto/internal/workload"
)

// Options configures offline optimization.
type Options struct {
	// BlockSize is the target rows per block, in full-data terms.
	BlockSize int
	// SampleRate is the uniform per-table sampling rate s (§4.2);
	// 1 disables sampling.
	SampleRate float64
	// KeepWholeBelow keeps tables with at most this many rows unsampled
	// (the paper keeps tables under ~1K rows whole). Default 1000.
	KeepWholeBelow int
	// MaxInductionDepth caps induction path length. Default 4 (the
	// deepest the paper observes on TPC-H, Table 2).
	MaxInductionDepth int
	// JoinInduction distinguishes MTO (true) from STO (false).
	JoinInduction bool
	// DisableCA turns off cardinality adjustment (Fig. 13a ablation).
	DisableCA bool
	// DisableUniqueRestriction lifts the unique-source-column policy of
	// §4.1.1 (ablation).
	DisableUniqueRestriction bool
	// LeafOrderKeys optionally names, per table, a column to order records
	// by *within* each qd-tree leaf. The tree fixes which block group a
	// record belongs to; the intra-leaf order is otherwise arbitrary, so
	// ordering by the table's natural sort key (e.g. a date) keeps zone
	// maps effective for range filters inside large leaves.
	LeafOrderKeys map[string]string
	// Parallelism bounds the worker budget of the offline phases: each
	// table's qd-tree build fans candidate precompute, cut scoring, and
	// subtree recursion across it, and record routing splits each table
	// into row chunks. <= 0 selects GOMAXPROCS, 1 forces the sequential
	// paths. The learned layout is byte-identical at any setting.
	Parallelism int
	// Seed drives sampling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.KeepWholeBelow == 0 {
		o.KeepWholeBelow = 1000
	}
	if o.MaxInductionDepth == 0 {
		o.MaxInductionDepth = 4
	}
	if o.SampleRate == 0 {
		o.SampleRate = 1
	}
	return o
}

func (o Options) validate() error {
	if o.BlockSize <= 0 {
		return fmt.Errorf("core: non-positive block size %d", o.BlockSize)
	}
	if o.SampleRate <= 0 || o.SampleRate > 1 {
		return fmt.Errorf("core: sample rate %g out of (0, 1]", o.SampleRate)
	}
	return nil
}

// Timings breaks down where offline time went (Table 3).
type Timings struct {
	// OptimizeSeconds covers sampling, candidate generation, literal-cut
	// evaluation on the sample, and tree construction.
	OptimizeSeconds float64
	// RoutingSeconds covers re-evaluating chosen literal cuts on the full
	// data and assigning every record to a block.
	RoutingSeconds float64
}

// Optimizer is a learned multi-table layout: one qd-tree per table.
type Optimizer struct {
	opts    Options
	ds      *relation.Dataset
	w       *workload.Workload
	trees   map[string]*qdtree.Tree
	unique  joingraph.UniqueFn
	timings Timings
}

// UniqueFromDataset derives the unique-column oracle from schema metadata.
func UniqueFromDataset(ds *relation.Dataset) joingraph.UniqueFn {
	return func(table, column string) bool {
		t := ds.Table(table)
		return t != nil && t.Schema().IsUnique(column)
	}
}

// Optimize learns the layout for ds under w (§3.2.1). The returned
// Optimizer's induced cuts are already re-evaluated against the full
// dataset, so records can be routed immediately.
func Optimize(ds *relation.Dataset, w *workload.Workload, opts Options) (*Optimizer, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	o := &Optimizer{opts: opts, ds: ds, w: w, trees: map[string]*qdtree.Tree{}}
	if opts.DisableUniqueRestriction {
		o.unique = joingraph.AllowAll
	} else {
		o.unique = UniqueFromDataset(ds)
	}

	start := time.Now()
	// Sample the dataset (§4.2).
	rng := rand.New(rand.NewSource(opts.Seed))
	buildDS := ds
	if opts.SampleRate < 1 {
		buildDS, _ = ds.Sample(opts.SampleRate, opts.KeepWholeBelow, rng)
	}

	// Step 1a: simple predicates per table.
	simple := workload.SimplePredicates(w)

	// Steps 1b–1c: join-induced predicates, evaluated on the sample through
	// the batched evaluator: one pass per distinct source scan, shared hop
	// prefixes, and a worker pool bounded by Parallelism.
	var inducedByTable map[string][]*induce.Predicate
	if opts.JoinInduction {
		inducedByTable = induce.FromWorkload(w, o.unique, opts.MaxInductionDepth)
		if err := induce.EvaluateAll(buildDS, flattenInduced(inducedByTable), opts.Parallelism); err != nil {
			return nil, err
		}
		for _, ips := range inducedByTable {
			for _, ip := range ips {
				// Per-hop CA rates: a hop only thins the literal if its
				// scanned table was actually sampled (small tables are
				// kept whole, §4.2).
				rates := make([]float64, len(ip.Path.Hops))
				for i, h := range ip.Path.Hops {
					rates[i] = 1
					bt, ft := buildDS.Table(h.FromTable), ds.Table(h.FromTable)
					if bt != nil && ft != nil && bt.NumRows() < ft.NumRows() {
						rates[i] = opts.SampleRate
					}
				}
				ip.HopRates = rates
			}
		}
	}

	// Step 2: one qd-tree per table. Tables are independent (their
	// candidate cuts are already materialized), so they build in parallel —
	// behind a semaphore sized by Parallelism, so the knob caps how many
	// table builds run at once instead of fanning out one goroutine per
	// table unconditionally.
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	sem := make(chan struct{}, effectiveParallelism(opts.Parallelism))
	for _, name := range ds.TableNames() {
		var cuts []qdtree.Cut
		for _, p := range simple[name] {
			cuts = append(cuts, qdtree.NewSimpleCut(p))
		}
		for _, ip := range inducedByTable[name] {
			cuts = append(cuts, qdtree.NewInducedCut(ip))
		}
		// Per-table effective sample rate: tables kept whole build at
		// rate 1 so their row counts are not inflated.
		rate := opts.SampleRate
		if buildDS.Table(name).NumRows() == ds.Table(name).NumRows() {
			rate = 1
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(name string, cuts []qdtree.Cut, rate float64) {
			defer wg.Done()
			defer func() { <-sem }()
			tree, err := qdtree.Build(buildDS.Table(name), qdtree.BuildQueries(w, name), cuts, qdtree.Config{
				Table:        name,
				BlockSize:    opts.BlockSize,
				SampleRate:   rate,
				CASampleRate: opts.SampleRate,
				DisableCA:    opts.DisableCA,
				Parallelism:  opts.Parallelism,
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			o.trees[name] = tree
		}(name, cuts, rate)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	o.timings.OptimizeSeconds = time.Since(start).Seconds()

	// Chosen induced cuts must hold full-data literals before routing.
	routeStart := time.Now()
	if opts.SampleRate < 1 && opts.JoinInduction {
		if err := o.reevaluateInducedCuts(); err != nil {
			return nil, err
		}
	}
	o.timings.RoutingSeconds = time.Since(routeStart).Seconds()
	return o, nil
}

// effectiveParallelism resolves the Parallelism knob: <= 0 means "use every
// CPU", anything else is the exact worker budget.
func effectiveParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// flattenInduced flattens the per-target predicate map into one slice in
// deterministic (sorted target, insertion) order, so batched evaluation
// reports errors deterministically across runs.
func flattenInduced(byTable map[string][]*induce.Predicate) []*induce.Predicate {
	targets := make([]string, 0, len(byTable))
	for name := range byTable {
		targets = append(targets, name)
	}
	sort.Strings(targets)
	var out []*induce.Predicate
	for _, name := range targets {
		out = append(out, byTable[name]...)
	}
	return out
}

// reevaluateInducedCuts re-runs every chosen cut's semi-join chain on the
// full dataset (they were evaluated on the sample during construction).
// The chosen cuts are deduplicated across trees, then batch-evaluated with
// shared scans and the same worker budget as the build.
func (o *Optimizer) reevaluateInducedCuts() error {
	done := map[*induce.Predicate]bool{}
	var preds []*induce.Predicate
	names := make([]string, 0, len(o.trees))
	for name := range o.trees {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, ic := range o.trees[name].InducedCuts() {
			if done[ic.Ind] {
				continue
			}
			done[ic.Ind] = true
			preds = append(preds, ic.Ind)
		}
	}
	return induce.EvaluateAll(o.ds, preds, o.opts.Parallelism)
}

// Tree returns the learned qd-tree for a table (nil if unknown).
func (o *Optimizer) Tree(table string) *qdtree.Tree { return o.trees[table] }

// Dataset returns the dataset the optimizer was built over.
func (o *Optimizer) Dataset() *relation.Dataset { return o.ds }

// Workload returns the training workload.
func (o *Optimizer) Workload() *workload.Workload { return o.w }

// Options returns the optimization options (with defaults applied).
func (o *Optimizer) Options() Options { return o.opts }

// Timings returns the offline time breakdown.
func (o *Optimizer) Timings() Timings { return o.timings }

// Name returns "MTO" or "STO" depending on join induction.
func (o *Optimizer) Name() string {
	if o.opts.JoinInduction {
		return "MTO"
	}
	return "STO"
}

// Stats aggregates qd-tree statistics across tables (Table 2).
func (o *Optimizer) Stats() qdtree.Stats {
	var total qdtree.Stats
	for _, tree := range o.trees {
		total = total.Add(tree.Stats())
	}
	return total
}

// TableStats returns per-table tree statistics.
func (o *Optimizer) TableStats() map[string]qdtree.Stats {
	out := make(map[string]qdtree.Stats, len(o.trees))
	for name, tree := range o.trees {
		out[name] = tree.Stats()
	}
	return out
}

// BuildDesign routes every record of every table through its tree (§2.1.2)
// and returns the resulting physical design; routing time is added to
// Timings. Install the design into a block.Store to execute queries.
func (o *Optimizer) BuildDesign() (*layout.Design, error) {
	start := time.Now()
	d := layout.NewDesign(o.Name(), o.opts.BlockSize)
	names := o.ds.TableNames()
	allGroups := make([][][]int32, len(names))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, name := range names {
		tree := o.trees[name]
		if tree == nil {
			return nil, fmt.Errorf("core: no tree for table %q", name)
		}
		tree.Leaves() // index leaves before concurrent routing
		wg.Add(1)
		go func(i int, name string, tree *qdtree.Tree) {
			defer wg.Done()
			tbl := o.ds.Table(name)
			groups := tree.AssignRecordsParallel(tbl, o.opts.Parallelism)
			if col := o.opts.LeafOrderKeys[name]; col != "" {
				for _, g := range groups {
					sortRowsBy(tbl, g, col)
				}
			}
			mu.Lock()
			allGroups[i] = groups
			mu.Unlock()
		}(i, name, tree)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i, name := range names {
		tr := o.trees[name]
		d.SetTable(o.ds.Table(name), allGroups[i], func(q *workload.Query) []int {
			return tr.RouteQuery(q)
		})
	}
	o.timings.RoutingSeconds += time.Since(start).Seconds()
	return d, nil
}

// sortRowsBy stably orders the row indexes by the named column; unknown
// columns leave the order unchanged.
func sortRowsBy(tbl *relation.Table, rows []int32, col string) {
	ci, ok := tbl.Schema().ColumnIndex(col)
	if !ok {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return tbl.Value(int(rows[i]), ci).Less(tbl.Value(int(rows[j]), ci))
	})
}

// Clone returns an optimizer with structural copies of the qd-trees,
// sharing the (immutable-during-reorganization) cuts, dataset, and
// workload. Background reorganization (§5.1.1) plans and applies against a
// clone while the original keeps serving queries, then swaps.
func (o *Optimizer) Clone() *Optimizer {
	c := &Optimizer{
		opts:    o.opts,
		ds:      o.ds,
		w:       o.w,
		unique:  o.unique,
		timings: o.timings,
		trees:   make(map[string]*qdtree.Tree, len(o.trees)),
	}
	for name, t := range o.trees {
		c.trees[name] = t.Clone()
	}
	return c
}
