package core

import (
	"fmt"
	"sort"
	"time"

	"mto/internal/block"
	"mto/internal/induce"
	"mto/internal/layout"
	"mto/internal/workload"
)

// ChangeStats reports the work done absorbing a data change (§5.2).
type ChangeStats struct {
	// CutsUpdated counts join-induced cuts whose literals changed.
	CutsUpdated int
	// CutUpdateSeconds is the wall-clock time spent updating them; while
	// cuts update, inserted records cannot be routed (the shaded window
	// of Fig. 14b).
	CutUpdateSeconds float64
	// RowsRouted counts the inserted records assigned to blocks.
	RowsRouted int
	// BlocksWritten counts the blocks rewritten by the delta merge.
	BlocksWritten int
	// SimSeconds is the simulated cost of the block rewrites.
	SimSeconds float64
}

// affectedCuts returns the distinct induced predicates across all trees
// whose induction path contains the changed table. Trees are visited in
// sorted table-name order so the update order (and hence which error
// surfaces first, and the CutsUpdated interleaving) is deterministic.
func (o *Optimizer) affectedCuts(table string) []*induce.Predicate {
	names := make([]string, 0, len(o.trees))
	for name := range o.trees {
		names = append(names, name)
	}
	sort.Strings(names)
	seen := map[*induce.Predicate]bool{}
	var out []*induce.Predicate
	for _, name := range names {
		for _, ic := range o.trees[name].InducedCuts() {
			if !seen[ic.Ind] && ic.Ind.AffectedBy(table) {
				seen[ic.Ind] = true
				out = append(out, ic.Ind)
			}
		}
	}
	return out
}

// ApplyInsert absorbs rows newly appended to the named table. Join-induced
// cuts in other tables' trees that have the table on their induction path
// are updated incrementally, by evaluating them only on the inserted
// records (§5.2); the inserted records are then routed through the table's
// own qd-tree and merged into the layout. Under referential integrity and
// the unique-source restriction, no pre-existing record changes blocks —
// ApplyInsert relies on that invariant and only rewrites blocks that
// received new records.
//
// newRows are indexes into the (already-extended) base table; design must
// be installed in store.
func (o *Optimizer) ApplyInsert(table string, newRows []int, design *layout.Design, store block.Backend) (ChangeStats, error) {
	var stats ChangeStats
	tbl := o.ds.Table(table)
	if tbl == nil {
		return stats, fmt.Errorf("core: unknown table %q", table)
	}
	tree := o.trees[table]
	td := design.Table(table)
	if tree == nil || td == nil {
		return stats, fmt.Errorf("core: table %q has no optimized layout", table)
	}
	// An empty insert is a no-op: nothing to route, no cut literals change,
	// and no block is rewritten — skip the full re-install entirely.
	if len(newRows) == 0 {
		return stats, nil
	}

	// Update affected join-induced cuts in other tables' trees.
	start := time.Now()
	for _, ip := range o.affectedCuts(table) {
		if err := ip.ApplyInsert(o.ds, table, newRows); err != nil {
			return stats, err
		}
		stats.CutsUpdated++
	}
	stats.CutUpdateSeconds = time.Since(start).Seconds()

	// Route the inserted records through the table's tree.
	sub := tbl.SelectRows(newRows)
	subGroups := tree.AssignRecordsParallel(sub, o.opts.Parallelism)
	groups := td.Groups()
	if len(subGroups) != len(groups) {
		return stats, fmt.Errorf("core: tree has %d leaves but design has %d groups",
			len(subGroups), len(groups))
	}
	newGroups := make([][]int32, len(groups))
	touched := 0
	for li := range groups {
		newGroups[li] = groups[li]
		if len(subGroups[li]) == 0 {
			continue
		}
		touched++
		appended := make([]int32, 0, len(groups[li])+len(subGroups[li]))
		appended = append(appended, groups[li]...)
		for _, r := range subGroups[li] {
			appended = append(appended, int32(newRows[r]))
		}
		newGroups[li] = appended
	}
	stats.RowsRouted = len(newRows)
	stats.BlocksWritten = touched

	tr := tree
	design.SetTable(tbl, newGroups, func(q *workload.Query) []int {
		return tr.RouteQuery(q)
	})
	if _, err := design.Install(store, nil, 0); err != nil {
		return stats, err
	}
	stats.SimSeconds = float64(stats.BlocksWritten) * store.Cost().BlockWriteSeconds
	return stats, nil
}

// UpdateCutsForDelete incrementally removes deleted rows' contributions
// from every affected join-induced cut. It must be called while the rows
// are still present in the base table. The physical removal of the records
// from blocks is handled by the storage service's delta-store merge, which
// this simulation does not model (§5.2: "the physical change itself is
// handled transparently by the data analytics service").
func (o *Optimizer) UpdateCutsForDelete(table string, rows []int) (ChangeStats, error) {
	var stats ChangeStats
	start := time.Now()
	for _, ip := range o.affectedCuts(table) {
		if err := ip.ApplyDelete(o.ds, table, rows); err != nil {
			return stats, err
		}
		stats.CutsUpdated++
	}
	stats.CutUpdateSeconds = time.Since(start).Seconds()
	return stats, nil
}
