package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mto/internal/block"
	"mto/internal/induce"
	"mto/internal/layout"
	"mto/internal/qdtree"
	"mto/internal/relation"
	"mto/internal/workload"
)

// ReorgConfig parameterizes the reward function R(T,Q) = (q/w)·B(T,Q) − C(T)
// of §5.1.2.
type ReorgConfig struct {
	// Q is the number of future queries expected from the observed
	// distribution before the next workload shift. math.Inf(1) forces a
	// full reorganization.
	Q float64
	// W is the relative cost of writing vs reading a block (the paper's
	// evaluation system has w ≈ 100).
	W float64
	// DisablePruning turns off the §5.1.3 bound-based pruning (ablation);
	// every subtree's benefit is computed exactly.
	DisablePruning bool
	// Tables restricts planning to the named tables (nil = every table).
	// The incremental daemon plans only its top-staleness tables per cycle.
	Tables []string
	// DisableInduction skips join-induced candidate cuts even when the
	// optimizer was built with induction. Induced cuts require a full
	// evaluation pass over the dataset, so the daemon's cheap bandit arms
	// turn them off and let the reward signal decide whether they pay.
	DisableInduction bool
	// ExtraCuts adds per-table candidate cuts beyond those extracted from
	// the observed workload (e.g. the current tree's cuts, so a rebuild can
	// retain splits that still discriminate). Duplicates of observed cuts
	// are ignored.
	ExtraCuts map[string][]qdtree.Cut
}

func (c ReorgConfig) withDefaults() ReorgConfig {
	if c.W == 0 {
		c.W = 100
	}
	return c
}

// subtreeChoice is one selected reorganization target.
type subtreeChoice struct {
	node    *qdtree.Node
	newTree *qdtree.Tree
	reward  float64
	blocks  int
	// order is the node's BFS index in the tree, giving budget trimming a
	// deterministic identity for tie-breaking.
	order int
}

// ReorgPlan is the outcome of §5.1.3's optimization for one table.
type ReorgPlan struct {
	Table string
	// TotalReward is the combined reward of the chosen subtree set.
	TotalReward float64
	// SubtreesConsidered / SubtreesTotal report how much work pruning
	// saved (Table 5's "fraction of subtrees considered").
	SubtreesConsidered int
	SubtreesTotal      int
	// BlocksToRewrite counts the blocks under the chosen subtrees.
	BlocksToRewrite int
	// RowsToRewrite counts the records that will move.
	RowsToRewrite int
	// PlanSeconds is the wall-clock time spent planning (re-optimization
	// time in Table 5).
	PlanSeconds float64

	choices []subtreeChoice
}

// PlanReorg evaluates, for every table, which qd-tree subtrees are worth
// reorganizing for the observed workload (§5.1.2–5.1.3). design must be the
// installed design produced by this optimizer (its group→block mapping
// gives C(T)). The plan does not modify any state; pass it to ApplyReorg.
func (o *Optimizer) PlanReorg(observed *workload.Workload, cfg ReorgConfig, design *layout.Design) (map[string]*ReorgPlan, error) {
	cfg = cfg.withDefaults()
	if err := observed.Validate(); err != nil {
		return nil, err
	}
	tables := cfg.Tables
	if tables == nil {
		tables = o.ds.TableNames()
	} else {
		tables = append([]string(nil), tables...)
		sort.Strings(tables)
		for _, name := range tables {
			if o.ds.Table(name) == nil {
				return nil, fmt.Errorf("core: unknown table %q in reorg config", name)
			}
		}
	}
	// Candidate cuts from the observed workload, with literals on the full
	// dataset (reorganization always runs on full records, §5.1.2).
	simple := workload.SimplePredicates(observed)
	var inducedByTable map[string][]*induce.Predicate
	if o.opts.JoinInduction && !cfg.DisableInduction {
		inducedByTable = induce.FromWorkload(observed, o.unique, o.opts.MaxInductionDepth)
		for _, ips := range inducedByTable {
			for _, ip := range ips {
				if err := ip.Evaluate(o.ds); err != nil {
					return nil, err
				}
			}
		}
	}
	plans := map[string]*ReorgPlan{}
	for _, name := range tables {
		var cuts []qdtree.Cut
		seen := map[string]bool{}
		for _, p := range simple[name] {
			c := qdtree.NewSimpleCut(p)
			seen[c.String()] = true
			cuts = append(cuts, c)
		}
		for _, ip := range inducedByTable[name] {
			c := qdtree.NewInducedCut(ip)
			seen[c.String()] = true
			cuts = append(cuts, c)
		}
		for _, c := range cfg.ExtraCuts[name] {
			if key := c.String(); !seen[key] {
				seen[key] = true
				cuts = append(cuts, c)
			}
		}
		plan, err := o.planTableReorg(name, observed, cfg, design, cuts)
		if err != nil {
			return nil, err
		}
		plans[name] = plan
	}
	return plans, nil
}

// planTableReorg runs the reward computation and DP for one table.
func (o *Optimizer) planTableReorg(table string, observed *workload.Workload,
	cfg ReorgConfig, design *layout.Design, cuts []qdtree.Cut) (*ReorgPlan, error) {

	start := time.Now()
	tree := o.trees[table]
	tbl := o.ds.Table(table)
	groups := design.Table(table).Groups()
	groupBlocks := design.GroupBlocks(table)
	if groupBlocks == nil {
		return nil, fmt.Errorf("core: design not installed for table %q", table)
	}
	plan := &ReorgPlan{Table: table}

	// Route each observed query once; record the leaf sets.
	qLeaves := make([]map[int]bool, observed.Len())
	for qi, q := range observed.Queries {
		set := map[int]bool{}
		for _, li := range tree.RouteQuery(q) {
			set[li] = true
		}
		qLeaves[qi] = set
	}
	nQueries := float64(observed.Len())
	if nQueries == 0 {
		return plan, nil
	}

	// curAccesses(T): average blocks accessed under T per observed query —
	// both the benefit's upper bound (property 1) and the input to B.
	blocksUnderLeaf := func(li int) int { return len(groupBlocks[li]) }
	curAvgAccess := func(n *qdtree.Node) float64 {
		total := 0.0
		for qi := range qLeaves {
			for _, lf := range qdtree.SubtreeLeaves(n) {
				if qLeaves[qi][lf.LeafIndex] {
					total += float64(blocksUnderLeaf(lf.LeafIndex))
				}
			}
		}
		return total / nQueries
	}

	nodes := tree.Nodes()
	plan.SubtreesTotal = len(nodes)
	orderOf := map[*qdtree.Node]int{}
	for i, n := range nodes {
		orderOf[n] = i
	}

	type nodeInfo struct {
		bound    float64 // upper bound on B(T,Q)
		benefit  float64 // true B(T,Q), valid when computed
		computed bool
		pruned   bool
		reward   float64
		newTree  *qdtree.Tree
		blocks   int
		rows     int
	}
	info := map[*qdtree.Node]*nodeInfo{}

	// Property 1: B(T,Q) is bounded by current average accesses under T.
	for _, n := range nodes {
		ni := &nodeInfo{bound: curAvgAccess(n), reward: math.Inf(-1)}
		blocks, rows := 0, 0
		for _, lf := range qdtree.SubtreeLeaves(n) {
			blocks += blocksUnderLeaf(lf.LeafIndex)
			rows += len(groups[lf.LeafIndex])
		}
		ni.blocks, ni.rows = blocks, rows
		info[n] = ni
	}

	qw := cfg.Q / cfg.W
	// BFS order (nodes already is BFS): compute rewards with pruning.
	for _, n := range nodes {
		ni := info[n]
		if ni.pruned {
			continue
		}
		if !cfg.DisablePruning && qw*ni.bound-float64(ni.blocks) <= 0 {
			continue // cannot have positive reward
		}
		// Compute the true benefit: rebuild a tree over T's records and
		// measure the drop in block accesses for the observed queries.
		rows := qdtree.CollectRows(qdtree.SubtreeLeaves(n), groups)
		if len(rows) == 0 {
			continue
		}
		sub := tbl.SelectRows(intsOf(rows))
		newTree, err := qdtree.Build(sub, qdtree.BuildQueries(observed, table), cuts, qdtree.Config{
			Table:       table,
			BlockSize:   o.opts.BlockSize,
			SampleRate:  1,
			Parallelism: o.opts.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		plan.SubtreesConsidered++
		newAccess := 0.0
		for _, q := range observed.Queries {
			for _, li := range newTree.RouteQuery(q) {
				leafRows := newTree.Leaves()[li].SampleRows
				newAccess += float64(blocksFor(leafRows, o.opts.BlockSize))
			}
		}
		ni.benefit = ni.bound - newAccess/nQueries
		if ni.benefit < 0 {
			ni.benefit = 0
		}
		ni.computed = true
		ni.newTree = newTree
		ni.reward = qw*ni.benefit - float64(ni.blocks)

		if n.IsLeaf() || cfg.DisablePruning {
			continue
		}
		// Property 2: children's benefits are bounded by B(T,Q).
		for _, child := range []*qdtree.Node{n.Left, n.Right} {
			ci := info[child]
			if ni.benefit < ci.bound {
				ci.bound = ni.benefit
			}
			// ...and the bound propagates to all descendants.
			for _, d := range descendants(child) {
				if ni.benefit < info[d].bound {
					info[d].bound = ni.benefit
				}
			}
		}
		// Sibling bound: B(S) ≤ B(P) − B(T).
		if p := n.Parent; p != nil && info[p].computed {
			sib := p.Left
			if sib == n {
				sib = p.Right
			}
			rem := info[p].benefit - ni.benefit
			if rem < 0 {
				rem = 0
			}
			for _, d := range append(descendants(sib), sib) {
				if rem < info[d].bound {
					info[d].bound = rem
				}
			}
		}
		// Property 3: if R(T) ≥ B(T_L)+B(T_R), no descendant set beats {T}.
		childSum := info[n.Left].bound + info[n.Right].bound
		if info[n.Left].computed {
			childSum = info[n.Left].benefit + info[n.Right].bound
		}
		if ni.reward >= childSum {
			for _, d := range descendants(n) {
				info[d].pruned = true
			}
		}
	}

	// DP for the optimal non-overlapping subtree set (§5.1.3).
	type dpResult struct {
		reward  float64
		choices []subtreeChoice
	}
	var dp func(n *qdtree.Node) dpResult
	dp = func(n *qdtree.Node) dpResult {
		ni := info[n]
		self := dpResult{reward: 0}
		if ni.computed && ni.reward > 0 {
			self = dpResult{reward: ni.reward, choices: []subtreeChoice{{
				node: n, newTree: ni.newTree, reward: ni.reward, blocks: ni.blocks,
				order: orderOf[n],
			}}}
		}
		if n.IsLeaf() {
			return self
		}
		l, r := dp(n.Left), dp(n.Right)
		if l.reward+r.reward > self.reward {
			return dpResult{reward: l.reward + r.reward, choices: append(l.choices, r.choices...)}
		}
		return self
	}
	best := dp(tree.Root)
	plan.TotalReward = best.reward
	plan.choices = best.choices
	for _, c := range best.choices {
		plan.BlocksToRewrite += c.blocks
		plan.RowsToRewrite += info[c.node].rows
	}
	plan.PlanSeconds = time.Since(start).Seconds()
	return plan, nil
}

func descendants(n *qdtree.Node) []*qdtree.Node {
	var out []*qdtree.Node
	var walk func(m *qdtree.Node)
	walk = func(m *qdtree.Node) {
		if m == nil {
			return
		}
		if m != n {
			out = append(out, m)
		}
		if !m.IsLeaf() {
			walk(m.Left)
			walk(m.Right)
		}
	}
	walk(n)
	return out
}

func intsOf(rows []int32) []int {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = int(r)
	}
	return out
}

func blocksFor(rows, blockSize int) int {
	if rows == 0 {
		return 0
	}
	return (rows + blockSize - 1) / blockSize
}

// ReorgStats summarizes an applied reorganization.
type ReorgStats struct {
	// BlocksRewritten counts the blocks under the chosen subtrees — the
	// paper's logical rewrite unit (§5.1.2's C(T)).
	BlocksRewritten int
	// BlocksWritten counts the physical block writes charged to the store:
	// the whole table for a full install, only the appended replacement
	// blocks for ApplyReorgPartial. This is the unit the daemon's
	// per-cycle write budget bounds.
	BlocksWritten int
	// RowsMoved counts the records re-routed into new blocks.
	RowsMoved int
	// FracDataReorganized is RowsMoved over total dataset rows.
	FracDataReorganized float64
	// SimSeconds is the simulated wall-clock cost of the rewrite
	// (BlocksRewritten × block write cost), per §5.1.1 performed off the
	// query path on a shadow copy.
	SimSeconds float64
}

// leafSlot is one leaf of the post-reorganization tree in final
// left-to-right order: either a surviving leaf of the current tree or a
// leaf of a chosen subtree's replacement. Staging computes the slots from
// the unmodified tree so nothing mutates before the store accepts the new
// layout.
type leafSlot struct {
	old    *qdtree.Node // surviving leaf; nil for replacement leaves
	choice int          // index into choices (-1 for surviving leaves)
	leaf   int          // leaf index within choices[choice].newTree
}

// finalSlots walks the current tree, substituting each chosen subtree with
// its replacement's leaves, and returns the post-commit leaf order.
func finalSlots(root *qdtree.Node, choices []subtreeChoice) []leafSlot {
	chosen := map[*qdtree.Node]int{}
	for i, c := range choices {
		chosen[c.node] = i
	}
	var out []leafSlot
	var walk func(n *qdtree.Node)
	walk = func(n *qdtree.Node) {
		if i, ok := chosen[n]; ok {
			for li := range choices[i].newTree.Leaves() {
				out = append(out, leafSlot{old: nil, choice: i, leaf: li})
			}
			return
		}
		if n.IsLeaf() {
			out = append(out, leafSlot{old: n, choice: -1})
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(root)
	return out
}

// routeChoices routes each chosen subtree's records through its
// replacement tree and returns, per choice, the base-table row groups in
// the replacement's leaf order.
func (o *Optimizer) routeChoices(tbl *relation.Table, oldGroups [][]int32, choices []subtreeChoice) [][][]int32 {
	routed := make([][][]int32, len(choices))
	for i, c := range choices {
		rows := qdtree.CollectRows(qdtree.SubtreeLeaves(c.node), oldGroups)
		sub := tbl.SelectRows(intsOf(rows))
		subGroups := c.newTree.AssignRecordsParallel(sub, o.opts.Parallelism)
		base := make([][]int32, len(subGroups))
		for li, g := range subGroups {
			bg := make([]int32, len(g))
			for j, r := range g {
				bg[j] = rows[r]
			}
			base[li] = bg
		}
		routed[i] = base
	}
	return routed
}

// ApplyReorg physically performs the planned reorganization (§5.1.1):
// each chosen subtree is replaced by its re-optimized tree, the affected
// records are re-routed, and the table's layout is re-installed in store.
// Only blocks under chosen subtrees count as rewritten.
//
// Tables commit one at a time, and each commit is staged: the tree and
// design mutate only after the store accepted the table's new layout. A
// mid-apply backend failure therefore leaves every table either fully
// reorganized or fully untouched — never torn — and the returned stats
// cover exactly the committed tables. Tables without positive-reward
// choices are skipped entirely (no store write); an all-empty plan set is
// a free no-op.
func (o *Optimizer) ApplyReorg(plans map[string]*ReorgPlan, design *layout.Design, store block.Backend) (ReorgStats, error) {
	var stats ReorgStats
	cost := store.Cost()
	for _, name := range o.ds.TableNames() {
		plan := plans[name]
		if plan == nil || len(plan.choices) == 0 {
			continue
		}
		tree := o.trees[name]
		tbl := o.ds.Table(name)
		oldGroups := design.Table(name).Groups()

		// Stage: compute the post-commit groups without mutating anything.
		routed := o.routeChoices(tbl, oldGroups, plan.choices)
		slots := finalSlots(tree.Root, plan.choices)
		groups := make([][]int32, len(slots))
		for si, sl := range slots {
			if sl.old != nil {
				groups[si] = oldGroups[sl.old.LeafIndex]
			} else {
				groups[si] = routed[sl.choice][sl.leaf]
			}
		}
		// Install: the route closure reads the tree lazily at query time,
		// after the commit below has swapped the chosen subtrees in.
		tr := tree
		if _, err := design.InstallTable(store, tbl, groups, func(q *workload.Query) []int {
			return tr.RouteQuery(q)
		}); err != nil {
			return stats, err
		}
		// Commit: swap the subtrees; leaf order now matches groups.
		for _, c := range plan.choices {
			tree.Replace(c.node, c.newTree.Root)
		}
		for i := range plan.choices {
			rows := 0
			for _, g := range routed[i] {
				rows += len(g)
			}
			stats.RowsMoved += rows
			stats.BlocksRewritten += blocksFor(rows, o.opts.BlockSize)
		}
		stats.BlocksWritten += store.NumBlocks(name)
	}
	if n := o.ds.NumRows(); n > 0 && stats.RowsMoved > 0 {
		stats.FracDataReorganized = float64(stats.RowsMoved) / float64(n)
	}
	stats.SimSeconds = float64(stats.BlocksRewritten) * cost.BlockWriteSeconds
	return stats, nil
}

// ApplyReorgPartial performs the planned reorganization through the
// backend's ReplaceBlocks primitive instead of a full per-table rewrite:
// only the blocks under the chosen subtrees — plus the leftover rows of
// blocks straddling a chosen/unchosen leaf boundary — are replaced, and
// every untouched block keeps its identity (and, on the disk backend, its
// buffer-pool pages) across the swap. This is the incremental daemon's
// install path; physical writes are the appended replacement blocks only,
// reported in ReorgStats.BlocksWritten.
//
// Like ApplyReorg, tables commit one at a time with stage-then-commit
// semantics: ReplaceBlocks swaps a complete new generation atomically, and
// the tree/design mutate only after it succeeds.
func (o *Optimizer) ApplyReorgPartial(plans map[string]*ReorgPlan, design *layout.Design, store block.Backend) (ReorgStats, error) {
	var stats ReorgStats
	blockSize := o.opts.BlockSize
	for _, name := range o.ds.TableNames() {
		plan := plans[name]
		if plan == nil || len(plan.choices) == 0 {
			continue
		}
		tree := o.trees[name]
		tbl := o.ds.Table(name)
		oldGroups := design.Table(name).Groups()
		gb := design.GroupBlocks(name)
		if gb == nil {
			return stats, fmt.Errorf("core: design not installed for table %q", name)
		}
		rowToBlock, err := store.RowToBlock(name)
		if err != nil {
			return stats, err
		}
		numBlocks := store.NumBlocks(name)

		// Blocks retired by the chosen subtrees. A block straddling a
		// chosen/unchosen boundary is retired too; its surviving rows are
		// re-appended as stray groups below.
		oldIDs := map[int]bool{}
		for _, c := range plan.choices {
			for _, lf := range qdtree.SubtreeLeaves(c.node) {
				for _, b := range gb[lf.LeafIndex] {
					oldIDs[b] = true
				}
			}
		}
		// Kept blocks are renumbered by BuildReplacement in ascending
		// old-ID order; appended groups get sequential IDs after them.
		rank := make([]int, numBlocks)
		kept := 0
		for id := 0; id < numBlocks; id++ {
			if oldIDs[id] {
				rank[id] = -1
			} else {
				rank[id] = kept
				kept++
			}
		}

		routed := o.routeChoices(tbl, oldGroups, plan.choices)
		slots := finalSlots(tree.Root, plan.choices)
		groups := make([][]int32, len(slots))
		groupBlocks := make([][]int, len(slots))
		var storeGroups [][]int32
		next := kept
		appendGroup := func(si int, g []int32) {
			if len(g) == 0 {
				return
			}
			storeGroups = append(storeGroups, g)
			nb := blocksFor(len(g), blockSize)
			for j := 0; j < nb; j++ {
				groupBlocks[si] = append(groupBlocks[si], next+j)
			}
			next += nb
		}
		for si, sl := range slots {
			if sl.old != nil {
				g := oldGroups[sl.old.LeafIndex]
				groups[si] = g
				for _, b := range gb[sl.old.LeafIndex] {
					if rank[b] >= 0 {
						groupBlocks[si] = append(groupBlocks[si], rank[b])
					}
				}
				// Rows of this surviving leaf that lived in a retired
				// (straddling) block move into a fresh appended block.
				var stray []int32
				for _, r := range g {
					if oldIDs[int(rowToBlock[r])] {
						stray = append(stray, r)
					}
				}
				appendGroup(si, stray)
			} else {
				g := routed[sl.choice][sl.leaf]
				groups[si] = g
				appendGroup(si, g)
			}
		}

		sec, err := store.ReplaceBlocks(name, oldIDs, storeGroups, blockSize)
		if err != nil {
			return stats, err
		}
		// Commit: swap the subtrees, then point the design at the
		// replacement numbering computed above.
		for _, c := range plan.choices {
			tree.Replace(c.node, c.newTree.Root)
		}
		tr := tree
		if err := design.SetTableBlocks(tbl, groups, func(q *workload.Query) []int {
			return tr.RouteQuery(q)
		}, groupBlocks); err != nil {
			return stats, err
		}
		for i := range plan.choices {
			rows := 0
			for _, g := range routed[i] {
				rows += len(g)
			}
			stats.RowsMoved += rows
			stats.BlocksRewritten += blocksFor(rows, blockSize)
		}
		stats.BlocksWritten += next - kept
		stats.SimSeconds += sec
	}
	if n := o.ds.NumRows(); n > 0 && stats.RowsMoved > 0 {
		stats.FracDataReorganized = float64(stats.RowsMoved) / float64(n)
	}
	return stats, nil
}

// EstimateWrites returns the physical block writes ApplyReorgPartial would
// charge for the plan's current choices: the chopped replacement groups
// plus one stray group per surviving leaf that shares a block with a
// chosen subtree. design and store must reflect the layout the plan was
// computed against.
func (o *Optimizer) EstimateWrites(plan *ReorgPlan, design *layout.Design, store block.Backend) (int, error) {
	return o.estimateWrites(plan, plan.choices, design, store)
}

func (o *Optimizer) estimateWrites(plan *ReorgPlan, choices []subtreeChoice, design *layout.Design, store block.Backend) (int, error) {
	if len(choices) == 0 {
		return 0, nil
	}
	name := plan.Table
	gb := design.GroupBlocks(name)
	if gb == nil {
		return 0, fmt.Errorf("core: design not installed for table %q", name)
	}
	rowToBlock, err := store.RowToBlock(name)
	if err != nil {
		return 0, err
	}
	oldGroups := design.Table(name).Groups()
	oldIDs := map[int]bool{}
	chosenLeaves := map[*qdtree.Node]bool{}
	writes := 0
	for _, c := range choices {
		for _, lf := range qdtree.SubtreeLeaves(c.node) {
			chosenLeaves[lf] = true
			for _, b := range gb[lf.LeafIndex] {
				oldIDs[b] = true
			}
		}
		// Replacement leaves are built at sample rate 1, so SampleRows is
		// the exact row count each leaf will hold.
		for _, lf := range c.newTree.Leaves() {
			writes += blocksFor(lf.SampleRows, o.opts.BlockSize)
		}
	}
	tree := o.trees[name]
	for _, lf := range tree.Leaves() {
		if chosenLeaves[lf] {
			continue
		}
		stray := 0
		for _, r := range oldGroups[lf.LeafIndex] {
			if oldIDs[int(rowToBlock[r])] {
				stray++
			}
		}
		writes += blocksFor(stray, o.opts.BlockSize)
	}
	return writes, nil
}

// TrimPlansToBudget drops the lowest-value subtree choices until the
// estimated physical writes of an ApplyReorgPartial fit within budget
// blocks. Choices are ranked greedily by reward per estimated write
// (standalone), with deterministic tie-breaking on reward, table name, and
// BFS order; a choice whose marginal cost no longer fits is skipped but
// later, cheaper choices may still be admitted. The returned plans map
// shares ReorgPlan values only for untrimmed tables; trimmed tables get
// shallow copies with the reduced choice set and recomputed totals.
// budget <= 0 means unlimited and returns plans unchanged.
func (o *Optimizer) TrimPlansToBudget(plans map[string]*ReorgPlan, design *layout.Design, store block.Backend, budget int) (map[string]*ReorgPlan, error) {
	if budget <= 0 {
		return plans, nil
	}
	type cand struct {
		table  string
		idx    int // index into the table plan's choices
		reward float64
		solo   int // standalone write estimate
		order  int
	}
	var cands []cand
	names := make([]string, 0, len(plans))
	for name := range plans {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		plan := plans[name]
		if plan == nil {
			continue
		}
		for i, c := range plan.choices {
			solo, err := o.estimateWrites(plan, plan.choices[i:i+1], design, store)
			if err != nil {
				return nil, err
			}
			cands = append(cands, cand{table: name, idx: i, reward: c.reward, solo: solo, order: c.order})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		da := ca.reward / float64(ca.solo+1)
		db := cb.reward / float64(cb.solo+1)
		if da != db {
			return da > db
		}
		if ca.reward != cb.reward {
			return ca.reward > cb.reward
		}
		if ca.table != cb.table {
			return ca.table < cb.table
		}
		return ca.order < cb.order
	})

	selected := map[string][]int{} // table → chosen indexes
	spent := 0
	for _, c := range cands {
		trial := append(append([]int(nil), selected[c.table]...), c.idx)
		var choices []subtreeChoice
		for _, i := range trial {
			choices = append(choices, plans[c.table].choices[i])
		}
		cost, err := o.estimateWrites(plans[c.table], choices, design, store)
		if err != nil {
			return nil, err
		}
		prev, err := o.estimateWrites(plans[c.table], choicesAt(plans[c.table], selected[c.table]), design, store)
		if err != nil {
			return nil, err
		}
		marginal := cost - prev
		if spent+marginal > budget {
			continue
		}
		spent += marginal
		selected[c.table] = trial
	}

	out := make(map[string]*ReorgPlan, len(plans))
	for _, name := range names {
		plan := plans[name]
		if plan == nil {
			out[name] = nil
			continue
		}
		sel := selected[name]
		if len(sel) == len(plan.choices) {
			out[name] = plan
			continue
		}
		sort.Ints(sel)
		trimmed := &ReorgPlan{
			Table:              plan.Table,
			SubtreesConsidered: plan.SubtreesConsidered,
			SubtreesTotal:      plan.SubtreesTotal,
			PlanSeconds:        plan.PlanSeconds,
		}
		for _, i := range sel {
			c := plan.choices[i]
			trimmed.choices = append(trimmed.choices, c)
			trimmed.TotalReward += c.reward
			trimmed.BlocksToRewrite += c.blocks
		}
		trimmed.RowsToRewrite = 0
		groups := design.Table(name).Groups()
		for _, c := range trimmed.choices {
			for _, lf := range qdtree.SubtreeLeaves(c.node) {
				trimmed.RowsToRewrite += len(groups[lf.LeafIndex])
			}
		}
		out[name] = trimmed
	}
	return out, nil
}

func choicesAt(plan *ReorgPlan, idxs []int) []subtreeChoice {
	out := make([]subtreeChoice, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, plan.choices[i])
	}
	return out
}

// Choices reports how many subtree replacements the plan selected.
func (p *ReorgPlan) Choices() int {
	if p == nil {
		return 0
	}
	return len(p.choices)
}
