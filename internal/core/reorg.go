package core

import (
	"fmt"
	"math"
	"time"

	"mto/internal/block"
	"mto/internal/induce"
	"mto/internal/layout"
	"mto/internal/qdtree"
	"mto/internal/workload"
)

// ReorgConfig parameterizes the reward function R(T,Q) = (q/w)·B(T,Q) − C(T)
// of §5.1.2.
type ReorgConfig struct {
	// Q is the number of future queries expected from the observed
	// distribution before the next workload shift. math.Inf(1) forces a
	// full reorganization.
	Q float64
	// W is the relative cost of writing vs reading a block (the paper's
	// evaluation system has w ≈ 100).
	W float64
	// DisablePruning turns off the §5.1.3 bound-based pruning (ablation);
	// every subtree's benefit is computed exactly.
	DisablePruning bool
}

func (c ReorgConfig) withDefaults() ReorgConfig {
	if c.W == 0 {
		c.W = 100
	}
	return c
}

// subtreeChoice is one selected reorganization target.
type subtreeChoice struct {
	node    *qdtree.Node
	newTree *qdtree.Tree
	reward  float64
	blocks  int
}

// ReorgPlan is the outcome of §5.1.3's optimization for one table.
type ReorgPlan struct {
	Table string
	// TotalReward is the combined reward of the chosen subtree set.
	TotalReward float64
	// SubtreesConsidered / SubtreesTotal report how much work pruning
	// saved (Table 5's "fraction of subtrees considered").
	SubtreesConsidered int
	SubtreesTotal      int
	// BlocksToRewrite counts the blocks under the chosen subtrees.
	BlocksToRewrite int
	// RowsToRewrite counts the records that will move.
	RowsToRewrite int
	// PlanSeconds is the wall-clock time spent planning (re-optimization
	// time in Table 5).
	PlanSeconds float64

	choices []subtreeChoice
}

// PlanReorg evaluates, for every table, which qd-tree subtrees are worth
// reorganizing for the observed workload (§5.1.2–5.1.3). design must be the
// installed design produced by this optimizer (its group→block mapping
// gives C(T)). The plan does not modify any state; pass it to ApplyReorg.
func (o *Optimizer) PlanReorg(observed *workload.Workload, cfg ReorgConfig, design *layout.Design) (map[string]*ReorgPlan, error) {
	cfg = cfg.withDefaults()
	if err := observed.Validate(); err != nil {
		return nil, err
	}
	// Candidate cuts from the observed workload, with literals on the full
	// dataset (reorganization always runs on full records, §5.1.2).
	simple := workload.SimplePredicates(observed)
	var inducedByTable map[string][]*induce.Predicate
	if o.opts.JoinInduction {
		inducedByTable = induce.FromWorkload(observed, o.unique, o.opts.MaxInductionDepth)
		for _, ips := range inducedByTable {
			for _, ip := range ips {
				if err := ip.Evaluate(o.ds); err != nil {
					return nil, err
				}
			}
		}
	}
	plans := map[string]*ReorgPlan{}
	for _, name := range o.ds.TableNames() {
		var cuts []qdtree.Cut
		for _, p := range simple[name] {
			cuts = append(cuts, qdtree.NewSimpleCut(p))
		}
		for _, ip := range inducedByTable[name] {
			cuts = append(cuts, qdtree.NewInducedCut(ip))
		}
		plan, err := o.planTableReorg(name, observed, cfg, design, cuts)
		if err != nil {
			return nil, err
		}
		plans[name] = plan
	}
	return plans, nil
}

// planTableReorg runs the reward computation and DP for one table.
func (o *Optimizer) planTableReorg(table string, observed *workload.Workload,
	cfg ReorgConfig, design *layout.Design, cuts []qdtree.Cut) (*ReorgPlan, error) {

	start := time.Now()
	tree := o.trees[table]
	tbl := o.ds.Table(table)
	groups := design.Table(table).Groups()
	groupBlocks := design.GroupBlocks(table)
	if groupBlocks == nil {
		return nil, fmt.Errorf("core: design not installed for table %q", table)
	}
	plan := &ReorgPlan{Table: table}

	// Route each observed query once; record the leaf sets.
	qLeaves := make([]map[int]bool, observed.Len())
	for qi, q := range observed.Queries {
		set := map[int]bool{}
		for _, li := range tree.RouteQuery(q) {
			set[li] = true
		}
		qLeaves[qi] = set
	}
	nQueries := float64(observed.Len())
	if nQueries == 0 {
		return plan, nil
	}

	// curAccesses(T): average blocks accessed under T per observed query —
	// both the benefit's upper bound (property 1) and the input to B.
	blocksUnderLeaf := func(li int) int { return len(groupBlocks[li]) }
	curAvgAccess := func(n *qdtree.Node) float64 {
		total := 0.0
		for qi := range qLeaves {
			for _, lf := range qdtree.SubtreeLeaves(n) {
				if qLeaves[qi][lf.LeafIndex] {
					total += float64(blocksUnderLeaf(lf.LeafIndex))
				}
			}
		}
		return total / nQueries
	}

	nodes := tree.Nodes()
	plan.SubtreesTotal = len(nodes)

	type nodeInfo struct {
		bound    float64 // upper bound on B(T,Q)
		benefit  float64 // true B(T,Q), valid when computed
		computed bool
		pruned   bool
		reward   float64
		newTree  *qdtree.Tree
		blocks   int
		rows     int
	}
	info := map[*qdtree.Node]*nodeInfo{}

	// Property 1: B(T,Q) is bounded by current average accesses under T.
	for _, n := range nodes {
		ni := &nodeInfo{bound: curAvgAccess(n), reward: math.Inf(-1)}
		blocks, rows := 0, 0
		for _, lf := range qdtree.SubtreeLeaves(n) {
			blocks += blocksUnderLeaf(lf.LeafIndex)
			rows += len(groups[lf.LeafIndex])
		}
		ni.blocks, ni.rows = blocks, rows
		info[n] = ni
	}

	qw := cfg.Q / cfg.W
	// BFS order (nodes already is BFS): compute rewards with pruning.
	for _, n := range nodes {
		ni := info[n]
		if ni.pruned {
			continue
		}
		if !cfg.DisablePruning && qw*ni.bound-float64(ni.blocks) <= 0 {
			continue // cannot have positive reward
		}
		// Compute the true benefit: rebuild a tree over T's records and
		// measure the drop in block accesses for the observed queries.
		rows := qdtree.CollectRows(qdtree.SubtreeLeaves(n), groups)
		if len(rows) == 0 {
			continue
		}
		sub := tbl.SelectRows(intsOf(rows))
		newTree, err := qdtree.Build(sub, qdtree.BuildQueries(observed, table), cuts, qdtree.Config{
			Table:       table,
			BlockSize:   o.opts.BlockSize,
			SampleRate:  1,
			Parallelism: o.opts.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		plan.SubtreesConsidered++
		newAccess := 0.0
		for _, q := range observed.Queries {
			for _, li := range newTree.RouteQuery(q) {
				leafRows := newTree.Leaves()[li].SampleRows
				newAccess += float64(blocksFor(leafRows, o.opts.BlockSize))
			}
		}
		ni.benefit = ni.bound - newAccess/nQueries
		if ni.benefit < 0 {
			ni.benefit = 0
		}
		ni.computed = true
		ni.newTree = newTree
		ni.reward = qw*ni.benefit - float64(ni.blocks)

		if n.IsLeaf() || cfg.DisablePruning {
			continue
		}
		// Property 2: children's benefits are bounded by B(T,Q).
		for _, child := range []*qdtree.Node{n.Left, n.Right} {
			ci := info[child]
			if ni.benefit < ci.bound {
				ci.bound = ni.benefit
			}
			// ...and the bound propagates to all descendants.
			for _, d := range descendants(child) {
				if ni.benefit < info[d].bound {
					info[d].bound = ni.benefit
				}
			}
		}
		// Sibling bound: B(S) ≤ B(P) − B(T).
		if p := n.Parent; p != nil && info[p].computed {
			sib := p.Left
			if sib == n {
				sib = p.Right
			}
			rem := info[p].benefit - ni.benefit
			if rem < 0 {
				rem = 0
			}
			for _, d := range append(descendants(sib), sib) {
				if rem < info[d].bound {
					info[d].bound = rem
				}
			}
		}
		// Property 3: if R(T) ≥ B(T_L)+B(T_R), no descendant set beats {T}.
		childSum := info[n.Left].bound + info[n.Right].bound
		if info[n.Left].computed {
			childSum = info[n.Left].benefit + info[n.Right].bound
		}
		if ni.reward >= childSum {
			for _, d := range descendants(n) {
				info[d].pruned = true
			}
		}
	}

	// DP for the optimal non-overlapping subtree set (§5.1.3).
	type dpResult struct {
		reward  float64
		choices []subtreeChoice
	}
	var dp func(n *qdtree.Node) dpResult
	dp = func(n *qdtree.Node) dpResult {
		ni := info[n]
		self := dpResult{reward: 0}
		if ni.computed && ni.reward > 0 {
			self = dpResult{reward: ni.reward, choices: []subtreeChoice{{
				node: n, newTree: ni.newTree, reward: ni.reward, blocks: ni.blocks,
			}}}
		}
		if n.IsLeaf() {
			return self
		}
		l, r := dp(n.Left), dp(n.Right)
		if l.reward+r.reward > self.reward {
			return dpResult{reward: l.reward + r.reward, choices: append(l.choices, r.choices...)}
		}
		return self
	}
	best := dp(tree.Root)
	plan.TotalReward = best.reward
	plan.choices = best.choices
	for _, c := range best.choices {
		plan.BlocksToRewrite += c.blocks
		plan.RowsToRewrite += info[c.node].rows
	}
	plan.PlanSeconds = time.Since(start).Seconds()
	return plan, nil
}

func descendants(n *qdtree.Node) []*qdtree.Node {
	var out []*qdtree.Node
	var walk func(m *qdtree.Node)
	walk = func(m *qdtree.Node) {
		if m == nil {
			return
		}
		if m != n {
			out = append(out, m)
		}
		if !m.IsLeaf() {
			walk(m.Left)
			walk(m.Right)
		}
	}
	walk(n)
	return out
}

func intsOf(rows []int32) []int {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = int(r)
	}
	return out
}

func blocksFor(rows, blockSize int) int {
	if rows == 0 {
		return 0
	}
	return (rows + blockSize - 1) / blockSize
}

// ReorgStats summarizes an applied reorganization.
type ReorgStats struct {
	// BlocksRewritten counts the physical block writes.
	BlocksRewritten int
	// RowsMoved counts the records re-routed into new blocks.
	RowsMoved int
	// FracDataReorganized is RowsMoved over total dataset rows.
	FracDataReorganized float64
	// SimSeconds is the simulated wall-clock cost of the rewrite
	// (BlocksRewritten × block write cost), per §5.1.1 performed off the
	// query path on a shadow copy.
	SimSeconds float64
}

// ApplyReorg physically performs the planned reorganization (§5.1.1):
// each chosen subtree is replaced by its re-optimized tree, the affected
// records are re-routed, and the table's layout is re-installed in store.
// Only blocks under chosen subtrees count as rewritten.
func (o *Optimizer) ApplyReorg(plans map[string]*ReorgPlan, design *layout.Design, store block.Backend) (ReorgStats, error) {
	var stats ReorgStats
	cost := store.Cost()
	for _, name := range o.ds.TableNames() {
		plan := plans[name]
		if plan == nil || len(plan.choices) == 0 {
			continue
		}
		tree := o.trees[name]
		tbl := o.ds.Table(name)
		oldGroups := design.Table(name).Groups()

		// Record each surviving leaf's rows — and every chosen subtree's
		// rows — before any Replace invalidates leaf indexes.
		rowsOf := map[*qdtree.Node][]int32{}
		for _, lf := range tree.Leaves() {
			rowsOf[lf] = oldGroups[lf.LeafIndex]
		}
		choiceRows := make([][]int32, len(plan.choices))
		for i, c := range plan.choices {
			choiceRows[i] = qdtree.CollectRows(qdtree.SubtreeLeaves(c.node), oldGroups)
		}
		for i, c := range plan.choices {
			// Route the subtree's records through its replacement.
			rows := choiceRows[i]
			sub := tbl.SelectRows(intsOf(rows))
			newGroups := c.newTree.AssignRecordsParallel(sub, o.opts.Parallelism)
			// Translate sub-relative row indexes back to base rows.
			for li, g := range newGroups {
				base := make([]int32, len(g))
				for i, r := range g {
					base[i] = rows[r]
				}
				rowsOf[c.newTree.Leaves()[li]] = base
			}
			tree.Replace(c.node, c.newTree.Root)
			stats.RowsMoved += len(rows)
			stats.BlocksRewritten += blocksFor(len(rows), o.opts.BlockSize)
		}
		// Rebuild the table's groups in the new leaf order.
		groups := make([][]int32, tree.NumLeaves())
		for i, lf := range tree.Leaves() {
			groups[i] = rowsOf[lf]
		}
		tr := tree
		design.SetTable(tbl, groups, func(q *workload.Query) []int {
			return tr.RouteQuery(q)
		})
	}
	if _, err := design.Install(store, nil, 0); err != nil {
		return stats, err
	}
	if n := o.ds.NumRows(); n > 0 {
		stats.FracDataReorganized = float64(stats.RowsMoved) / float64(n)
	}
	stats.SimSeconds = float64(stats.BlocksRewritten) * cost.BlockWriteSeconds
	return stats, nil
}
