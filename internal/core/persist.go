package core

import (
	"encoding/json"
	"fmt"
	"io"

	"mto/internal/induce"
	"mto/internal/joingraph"
	"mto/internal/qdtree"
	"mto/internal/relation"
	"mto/internal/workload"
)

// layoutDocument is the persisted form of a learned layout: the per-table
// qd-trees (logical form) plus the options needed to keep routing and
// maintenance consistent. Literal cuts are rebuilt on load by re-running
// the semi-join chains against the dataset, so the document stays small and
// stays correct across data changes between save and load.
type layoutDocument struct {
	Version int               `json:"version"`
	Options persistedOptions  `json:"options"`
	Trees   []json.RawMessage `json:"trees"`
}

type persistedOptions struct {
	BlockSize                int               `json:"block_size"`
	SampleRate               float64           `json:"sample_rate"`
	MaxInductionDepth        int               `json:"max_induction_depth"`
	JoinInduction            bool              `json:"join_induction"`
	DisableUniqueRestriction bool              `json:"disable_unique_restriction"`
	LeafOrderKeys            map[string]string `json:"leaf_order_keys,omitempty"`
}

const layoutDocVersion = 1

// Save writes the learned layout to w as JSON.
func (o *Optimizer) Save(w io.Writer) error {
	doc := layoutDocument{
		Version: layoutDocVersion,
		Options: persistedOptions{
			BlockSize:                o.opts.BlockSize,
			SampleRate:               o.opts.SampleRate,
			MaxInductionDepth:        o.opts.MaxInductionDepth,
			JoinInduction:            o.opts.JoinInduction,
			DisableUniqueRestriction: o.opts.DisableUniqueRestriction,
			LeafOrderKeys:            o.opts.LeafOrderKeys,
		},
	}
	for _, name := range o.ds.TableNames() {
		tree := o.trees[name]
		if tree == nil {
			return fmt.Errorf("core: no tree for table %q", name)
		}
		raw, err := json.Marshal(tree)
		if err != nil {
			return fmt.Errorf("core: marshal tree %s: %w", name, err)
		}
		doc.Trees = append(doc.Trees, raw)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Load reconstructs an Optimizer from a saved layout: trees are decoded,
// join-induced cuts are re-evaluated against ds (the data may have changed
// since saving — literals always reflect the current dataset), and the
// training workload is re-attached for reorganization planning. The
// returned optimizer routes records and queries exactly like the one that
// was saved.
func Load(r io.Reader, ds *relation.Dataset, w *workload.Workload) (*Optimizer, error) {
	var doc layoutDocument
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: decode layout: %w", err)
	}
	if doc.Version != layoutDocVersion {
		return nil, fmt.Errorf("core: unsupported layout version %d", doc.Version)
	}
	if w == nil {
		w = workload.NewWorkload()
	}
	o := &Optimizer{
		opts: Options{
			BlockSize:                doc.Options.BlockSize,
			SampleRate:               doc.Options.SampleRate,
			MaxInductionDepth:        doc.Options.MaxInductionDepth,
			JoinInduction:            doc.Options.JoinInduction,
			DisableUniqueRestriction: doc.Options.DisableUniqueRestriction,
			LeafOrderKeys:            doc.Options.LeafOrderKeys,
		}.withDefaults(),
		ds:    ds,
		w:     w,
		trees: map[string]*qdtree.Tree{},
	}
	if err := o.opts.validate(); err != nil {
		return nil, err
	}
	if o.opts.DisableUniqueRestriction {
		o.unique = joingraph.AllowAll
	} else {
		o.unique = UniqueFromDataset(ds)
	}
	for _, raw := range doc.Trees {
		tree, err := qdtree.UnmarshalTree(raw)
		if err != nil {
			return nil, err
		}
		if ds.Table(tree.Table) == nil {
			return nil, fmt.Errorf("core: layout references unknown table %q", tree.Table)
		}
		if _, dup := o.trees[tree.Table]; dup {
			return nil, fmt.Errorf("core: duplicate tree for table %q", tree.Table)
		}
		o.trees[tree.Table] = tree
	}
	for _, name := range ds.TableNames() {
		if o.trees[name] == nil {
			return nil, fmt.Errorf("core: layout missing tree for table %q", name)
		}
	}
	// Rebuild literal cuts against the current data (step 1c on load).
	done := map[*induce.Predicate]bool{}
	for _, tree := range o.trees {
		for _, ic := range tree.InducedCuts() {
			if done[ic.Ind] {
				continue
			}
			done[ic.Ind] = true
			if err := ic.Ind.Evaluate(ds); err != nil {
				return nil, err
			}
		}
	}
	return o, nil
}
