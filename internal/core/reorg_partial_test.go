package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mto/internal/block"
	"mto/internal/engine"
	"mto/internal/layout"
	"mto/internal/predicate"
	"mto/internal/relation"
	"mto/internal/value"
	"mto/internal/workload"
)

// twoFactDS is starDS with a second fact table, so join-induced cuts land
// in two trees and dim changes affect both.
func twoFactDS(t *testing.T, dims, factRows int, seed int64) *relation.Dataset {
	t.Helper()
	ds := starDS(t, dims, factRows, seed)
	fact := ds.Table("fact")
	fact2 := relation.NewTable(relation.MustSchema("fact2",
		relation.Column{Name: "fid", Type: value.KindInt, Unique: true},
		relation.Column{Name: "did", Type: value.KindInt},
		relation.Column{Name: "v", Type: value.KindInt},
		relation.Column{Name: "d", Type: value.KindInt},
	))
	for i := 0; i < fact.NumRows(); i++ {
		fact2.MustAppendRow(
			fact.Value(i, 0), fact.Value(i, 1), fact.Value(i, 2), fact.Value(i, 3),
		)
	}
	ds.MustAddTable(fact2)
	return ds
}

func twoFactWorkload(n int) *workload.Workload {
	w := workload.NewWorkload()
	for k := 0; k < n; k++ {
		w.Add(attrQuery("attr"+string(rune('0'+k%10)), int64(k%10)))
		q := workload.NewQuery("attr2-"+string(rune('0'+k%10)),
			workload.TableRef{Table: "dim"},
			workload.TableRef{Table: "fact2"},
		)
		q.AddJoin("dim", "id", "fact2", "did")
		q.Filter("dim", predicate.NewComparison("attr", predicate.Eq, value.Int(int64(k%10))))
		w.Add(q)
	}
	return w
}

// TestAffectedCutsDeterministic pins the sorted-table iteration order of
// affectedCuts: with induced cuts in two trees, repeated calls must return
// the identical predicate sequence (map iteration used to shuffle it).
func TestAffectedCutsDeterministic(t *testing.T) {
	ds := twoFactDS(t, 500, 20000, 9)
	mto, err := Optimize(ds, twoFactWorkload(6), Options{BlockSize: 1000, JoinInduction: true})
	if err != nil {
		t.Fatal(err)
	}
	first := mto.affectedCuts("dim")
	if len(first) < 2 {
		t.Fatalf("expected induced cuts in both fact trees, got %d affected predicates", len(first))
	}
	targets := map[string]bool{}
	for _, ip := range first {
		targets[ip.Target()] = true
	}
	if !targets["fact"] || !targets["fact2"] {
		t.Fatalf("expected affected cuts targeting fact and fact2, got %v", targets)
	}
	for i := 0; i < 50; i++ {
		again := mto.affectedCuts("dim")
		if len(again) != len(first) {
			t.Fatalf("iteration %d: length changed %d → %d", i, len(first), len(again))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("iteration %d: affectedCuts order not deterministic at %d", i, j)
			}
		}
	}
}

// TestApplyInsertEmptyNoOp: an insert of zero rows must not route, rewrite,
// or charge simulated seconds.
func TestApplyInsertEmptyNoOp(t *testing.T) {
	ds := starDS(t, 500, 20000, 10)
	mto, err := Optimize(ds, attrWorkload(5), Options{BlockSize: 1000, JoinInduction: true})
	if err != nil {
		t.Fatal(err)
	}
	design, err := mto.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	store := install(t, design)
	before := store.Stats()
	stats, err := mto.ApplyInsert("fact", nil, design, store)
	if err != nil {
		t.Fatal(err)
	}
	if stats != (ChangeStats{}) {
		t.Errorf("empty insert stats = %+v, want zero", stats)
	}
	if d := store.Stats().Sub(before); d != (block.Stats{}) {
		t.Errorf("empty insert touched the store: %+v", d)
	}
	// Unknown table still errors.
	if _, err := mto.ApplyInsert("nope", nil, design, store); err == nil {
		t.Error("unknown table accepted")
	}
}

// TestApplyReorgEmptyNoOp: plans with no positive-reward choices must not
// write a single block on either apply path.
func TestApplyReorgEmptyNoOp(t *testing.T) {
	ds := starDS(t, 500, 20000, 11)
	mto, err := Optimize(ds, attrWorkload(5), Options{BlockSize: 1000, JoinInduction: true})
	if err != nil {
		t.Fatal(err)
	}
	design, err := mto.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	store := install(t, design)
	// q=w ⇒ no subtree can have positive reward (B ≤ C).
	plans, err := mto.PlanReorg(attrWorkload(5), ReorgConfig{Q: 100, W: 100}, design)
	if err != nil {
		t.Fatal(err)
	}
	for name, plan := range plans {
		if plan.Choices() != 0 {
			t.Fatalf("expected empty plan for %s", name)
		}
	}
	before := store.Stats()
	stats, err := mto.ApplyReorg(plans, design, store)
	if err != nil {
		t.Fatal(err)
	}
	if stats != (ReorgStats{}) {
		t.Errorf("empty ApplyReorg stats = %+v, want zero", stats)
	}
	pstats, err := mto.ApplyReorgPartial(plans, design, store)
	if err != nil {
		t.Fatal(err)
	}
	if pstats != (ReorgStats{}) {
		t.Errorf("empty ApplyReorgPartial stats = %+v, want zero", pstats)
	}
	if d := store.Stats().Sub(before); d != (block.Stats{}) {
		t.Errorf("empty reorg touched the store: %+v", d)
	}
}

// failingBackend wraps a Backend and fails layout writes for one table.
type failingBackend struct {
	block.Backend
	failTable string
}

var errInjected = errors.New("injected backend failure")

func (f *failingBackend) SetLayout(table string, tl *block.TableLayout) (float64, error) {
	if table == f.failTable {
		return 0, errInjected
	}
	return f.Backend.SetLayout(table, tl)
}

func (f *failingBackend) ReplaceBlocks(table string, oldIDs map[int]bool, newGroups [][]int32, blockSize int) (float64, error) {
	if table == f.failTable {
		return 0, errInjected
	}
	return f.Backend.ReplaceBlocks(table, oldIDs, newGroups, blockSize)
}

// shiftScenario builds the workload-shift reorg setting shared by the
// failure and partial-apply tests: train on attr queries, then plan a
// positive-reward reorg for grp queries on the fact table.
func shiftScenario(t *testing.T, seed int64) (*Optimizer, *layout.Design, *block.Store, *relation.Dataset, *workload.Workload, map[string]*ReorgPlan) {
	t.Helper()
	ds := starDS(t, 1000, 50000, seed)
	shiftW := workload.NewWorkload()
	for k := int64(0); k < 5; k++ {
		q := workload.NewQuery("grp"+string(rune('0'+k)),
			workload.TableRef{Table: "dim"},
			workload.TableRef{Table: "fact"},
		)
		q.AddJoin("dim", "id", "fact", "did")
		q.Filter("dim", predicate.NewComparison("grp", predicate.Eq, value.Int(k)))
		shiftW.Add(q)
	}
	mto, err := Optimize(ds, attrWorkload(10), Options{BlockSize: 1000, JoinInduction: true})
	if err != nil {
		t.Fatal(err)
	}
	design, err := mto.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	store := install(t, design)
	plans, err := mto.PlanReorg(shiftW, ReorgConfig{Q: 10000, W: 100, Tables: []string{"fact"}}, design)
	if err != nil {
		t.Fatal(err)
	}
	if plans["fact"].Choices() == 0 {
		t.Fatal("scenario produced no reorg choices")
	}
	return mto, design, store, ds, shiftW, plans
}

func runAll(t *testing.T, store block.Backend, design *layout.Design, ds *relation.Dataset, w *workload.Workload) []*engine.Result {
	t.Helper()
	eng := engine.New(store, design, ds, engine.DefaultOptions())
	out := make([]*engine.Result, 0, w.Len())
	for _, q := range w.Queries {
		res, err := eng.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

// TestApplyReorgFailingBackendNotTorn injects a backend failure into the
// layout write and asserts the query path observes no partial install: the
// design, tree, and store are exactly as before the attempt, on both the
// full and the partial apply path.
func TestApplyReorgFailingBackendNotTorn(t *testing.T) {
	for _, mode := range []string{"full", "partial"} {
		t.Run(mode, func(t *testing.T) {
			mto, design, store, ds, shiftW, plans := shiftScenario(t, 4)
			before := runAll(t, store, design, ds, shiftW)
			beforeStats := store.Stats()
			fb := &failingBackend{Backend: store, failTable: "fact"}

			var err error
			if mode == "full" {
				_, err = mto.ApplyReorg(plans, design, fb)
			} else {
				_, err = mto.ApplyReorgPartial(plans, design, fb)
			}
			if !errors.Is(err, errInjected) {
				t.Fatalf("err = %v, want injected failure", err)
			}
			if d := store.Stats().Sub(beforeStats); d.BlocksWritten != 0 || d.RowsWritten != 0 {
				t.Errorf("failed reorg wrote to the store: %+v", d)
			}
			if err := store.Layout("fact").Validate(); err != nil {
				t.Fatalf("layout torn after failed reorg: %v", err)
			}
			after := runAll(t, store, design, ds, shiftW)
			if !reflect.DeepEqual(before, after) {
				t.Error("query results changed after failed reorg")
			}

			// The same plan still applies cleanly against the real store.
			var stats ReorgStats
			if mode == "full" {
				stats, err = mto.ApplyReorg(plans, design, store)
			} else {
				stats, err = mto.ApplyReorgPartial(plans, design, store)
			}
			if err != nil {
				t.Fatal(err)
			}
			if stats.RowsMoved == 0 || stats.BlocksWritten == 0 {
				t.Errorf("recovery apply stats = %+v", stats)
			}
			if err := store.Layout("fact").Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// rangeShiftScenario builds a workload shift whose optimal reorganization
// is a proper subtree, not a whole-table rebuild: train a pure d-range
// partition over fact(d ∈ [0,500)), then shift to v-range queries confined
// to d < 250. At a moderate revisit horizon (Q/W ≈ 3) re-optimizing only
// the d < 250 half pays off while a root rewrite costs more blocks than it
// recoups — exactly the regime partial installs are for.
func rangeShiftScenario(t *testing.T, seed int64) (*Optimizer, *layout.Design, *block.Store, *relation.Dataset, *workload.Workload, map[string]*ReorgPlan) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := relation.NewDataset()
	tab := relation.NewTable(relation.MustSchema("fact",
		relation.Column{Name: "fid", Type: value.KindInt, Unique: true},
		relation.Column{Name: "v", Type: value.KindInt},
		relation.Column{Name: "d", Type: value.KindInt},
	))
	for i := 0; i < 50000; i++ {
		tab.MustAppendRow(value.Int(int64(i)), value.Int(int64(rng.Intn(1000))), value.Int(int64(rng.Intn(500))))
	}
	ds.MustAddTable(tab)

	trainW := workload.NewWorkload()
	for k := int64(0); k < 8; k++ {
		q := workload.NewQuery("d"+string(rune('0'+k)), workload.TableRef{Table: "fact"})
		q.Filter("fact", predicate.NewComparison("d", predicate.Ge, value.Int(k*62)))
		q.Filter("fact", predicate.NewComparison("d", predicate.Lt, value.Int((k+1)*62)))
		trainW.Add(q)
	}
	shiftW := workload.NewWorkload()
	for k := int64(0); k < 5; k++ {
		q := workload.NewQuery("v"+string(rune('0'+k)), workload.TableRef{Table: "fact"})
		q.Filter("fact", predicate.NewComparison("d", predicate.Lt, value.Int(250)))
		q.Filter("fact", predicate.NewComparison("v", predicate.Ge, value.Int(k*200)))
		q.Filter("fact", predicate.NewComparison("v", predicate.Lt, value.Int((k+1)*200)))
		shiftW.Add(q)
	}

	mto, err := Optimize(ds, trainW, Options{BlockSize: 1000, JoinInduction: false})
	if err != nil {
		t.Fatal(err)
	}
	design, err := mto.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	store := install(t, design)
	plans, err := mto.PlanReorg(shiftW, ReorgConfig{Q: 300, W: 100}, design)
	if err != nil {
		t.Fatal(err)
	}
	p := plans["fact"]
	if p.Choices() == 0 {
		t.Fatal("scenario produced no reorg choices")
	}
	if p.RowsToRewrite >= tab.NumRows() {
		t.Fatalf("scenario chose a whole-table rewrite (%d rows) — partial install has nothing to save", p.RowsToRewrite)
	}
	return mto, design, store, ds, shiftW, plans
}

// TestApplyReorgPartialMatchesFull: the partial (ReplaceBlocks) install
// must produce the same query answers and the same routing improvements as
// the full per-table rewrite, while physically writing far fewer blocks.
func TestApplyReorgPartialMatchesFull(t *testing.T) {
	mtoA, designA, storeA, ds, shiftW, plansA := rangeShiftScenario(t, 4)
	mtoB, designB, storeB, _, _, plansB := rangeShiftScenario(t, 4)

	beforeBlocks := totalBlocks(t, engine.New(storeB, designB, ds, engine.DefaultOptions()), shiftW)

	statsA, err := mtoA.ApplyReorg(plansA, designA, storeA)
	if err != nil {
		t.Fatal(err)
	}
	est, err := mtoB.EstimateWrites(plansB["fact"], designB, storeB)
	if err != nil {
		t.Fatal(err)
	}
	wBefore := storeB.Stats()
	statsB, err := mtoB.ApplyReorgPartial(plansB, designB, storeB)
	if err != nil {
		t.Fatal(err)
	}
	if err := storeB.Layout("fact").Validate(); err != nil {
		t.Fatalf("partial layout invalid: %v", err)
	}

	// Same logical work, far less physical writing.
	if statsA.RowsMoved != statsB.RowsMoved || statsA.BlocksRewritten != statsB.BlocksRewritten {
		t.Errorf("logical stats differ: full %+v vs partial %+v", statsA, statsB)
	}
	if statsB.BlocksWritten >= statsA.BlocksWritten {
		t.Errorf("partial wrote %d blocks, full wrote %d — expected fewer", statsB.BlocksWritten, statsA.BlocksWritten)
	}
	if est != statsB.BlocksWritten {
		t.Errorf("EstimateWrites = %d, actual physical writes = %d", est, statsB.BlocksWritten)
	}
	if d := storeB.Stats().Sub(wBefore); d.BlocksWritten != int64(statsB.BlocksWritten) {
		t.Errorf("store charged %d block writes, stats report %d", d.BlocksWritten, statsB.BlocksWritten)
	}

	// Identical query answers, and the same improvement on the shifted
	// workload (block counts may differ slightly: the full path re-packs
	// the whole table so blocks straddle group boundaries, the partial
	// path chops appended groups per leaf).
	resA := runAll(t, storeA, designA, ds, shiftW)
	resB := runAll(t, storeB, designB, ds, shiftW)
	for i := range resA {
		if !reflect.DeepEqual(resA[i].SurvivingRows, resB[i].SurvivingRows) {
			t.Errorf("query %s: surviving rows differ between full and partial install", shiftW.Queries[i].ID)
		}
	}
	afterBlocks := totalBlocks(t, engine.New(storeB, designB, ds, engine.DefaultOptions()), shiftW)
	if afterBlocks >= beforeBlocks {
		t.Errorf("partial reorg did not help: %d → %d", beforeBlocks, afterBlocks)
	}
}

// TestTrimPlansToBudget: trimming keeps estimated (and actual) physical
// writes within the budget, at a reward no greater than the untrimmed plan.
func TestTrimPlansToBudget(t *testing.T) {
	mto, design, store, _, _, plans := shiftScenario(t, 4)

	full, err := mto.EstimateWrites(plans["fact"], design, store)
	if err != nil {
		t.Fatal(err)
	}
	if full < 2 {
		t.Skipf("scenario too small to trim: %d estimated writes", full)
	}
	// Unlimited budget passes plans through untouched.
	same, err := mto.TrimPlansToBudget(plans, design, store, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(same, plans) {
		t.Error("budget 0 must not trim")
	}

	budget := full / 2
	trimmed, err := mto.TrimPlansToBudget(plans, design, store, budget)
	if err != nil {
		t.Fatal(err)
	}
	est := 0
	for name, plan := range trimmed {
		e, err := mto.EstimateWrites(plan, design, store)
		if err != nil {
			t.Fatal(err)
		}
		est += e
		if plan != nil && plans[name] != nil && plan.TotalReward > plans[name].TotalReward+1e-9 {
			t.Errorf("%s: trimmed reward %g exceeds full %g", name, plan.TotalReward, plans[name].TotalReward)
		}
	}
	if est > budget {
		t.Fatalf("trimmed estimate %d exceeds budget %d", est, budget)
	}
	stats, err := mto.ApplyReorgPartial(trimmed, design, store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlocksWritten > budget {
		t.Errorf("applied %d physical writes, budget %d", stats.BlocksWritten, budget)
	}
	if err := store.Layout("fact").Validate(); err != nil {
		t.Fatal(err)
	}
}
