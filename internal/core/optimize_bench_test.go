package core

import (
	"testing"

	"mto/internal/datagen"
)

// BenchmarkOptimize measures end-to-end layout learning (sampling, induced
// predicate evaluation, per-table qd-tree builds) on a small SSB instance —
// the offline path mtobench pays before every replay.
func BenchmarkOptimize(b *testing.B) {
	ds := datagen.SSB(datagen.SSBConfig{ScaleFactor: 0.005, Seed: 1})
	w := datagen.SSBWorkload(2)
	opts := Options{
		BlockSize:     500,
		SampleRate:    0.25,
		JoinInduction: true,
		Seed:          1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := Optimize(ds, w, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := opt.BuildDesign(); err != nil {
			b.Fatal(err)
		}
	}
}
