package core

import (
	"strings"
	"testing"

	"mto/internal/engine"
	"mto/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := starDS(t, 500, 20000, 21)
	w := attrWorkload(10)
	opt, err := Optimize(ds, w, Options{
		BlockSize:     1000,
		JoinInduction: true,
		LeafOrderKeys: map[string]string{"fact": "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Options().BlockSize != 1000 {
		t.Error("Options accessor wrong")
	}
	var buf strings.Builder
	if err := opt.Save(&buf); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(strings.NewReader(buf.String()), ds, w)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != "MTO" || loaded.Options().BlockSize != 1000 {
		t.Error("options not restored")
	}
	if loaded.Options().LeafOrderKeys["fact"] != "d" {
		t.Error("leaf order keys not restored")
	}
	if loaded.Stats() != opt.Stats() {
		t.Errorf("stats differ: %+v vs %+v", loaded.Stats(), opt.Stats())
	}
	// Identical designs: same groups, same routing, same blocks per query.
	d1, err := opt.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := loaded.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := install(t, d1), install(t, d2)
	e1 := engine.New(s1, d1, ds, engine.DefaultOptions())
	e2 := engine.New(s2, d2, ds, engine.DefaultOptions())
	for _, q := range w.Queries {
		r1, err := e1.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e2.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if r1.BlocksRead != r2.BlocksRead {
			t.Errorf("%s: %d vs %d blocks after load", q.ID, r1.BlocksRead, r2.BlocksRead)
		}
	}
	// A loaded optimizer still supports dynamic data.
	fact := ds.Table("fact")
	fact.MustAppendRow(fact.Row(0)...)
	if _, err := loaded.ApplyInsert("fact", []int{fact.NumRows() - 1}, d2, s2); err != nil {
		t.Fatal(err)
	}
}

func TestLoadReflectsDataChanges(t *testing.T) {
	// Literal cuts are rebuilt against the dataset at load time, so a
	// layout saved before an insert routes the new records correctly.
	ds := starDS(t, 200, 5000, 22)
	w := attrWorkload(5)
	opt, err := Optimize(ds, w, Options{BlockSize: 500, JoinInduction: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := opt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// New dim rows appear between save and load.
	dim := ds.Table("dim")
	dim.MustAppendRow(dim.Row(0)...)
	loaded, err := Load(strings.NewReader(buf.String()), ds, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, tree := range []string{"dim", "fact"} {
		for _, ic := range loaded.Tree(tree).InducedCuts() {
			if !ic.Ind.Evaluated() {
				t.Fatal("induced cuts not re-evaluated on load")
			}
		}
	}
	design, err := loaded.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	if err := install(t, design).Layout("dim").Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrors(t *testing.T) {
	ds := starDS(t, 50, 500, 23)
	w := attrWorkload(2)
	opt, err := Optimize(ds, w, Options{BlockSize: 100, JoinInduction: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := opt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	if _, err := Load(strings.NewReader("{"), ds, w); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":2}`), ds, w); err == nil {
		t.Error("future version accepted")
	}
	// Layout for a different dataset is rejected.
	other := starDS(t, 10, 100, 24)
	otherOnly := strings.Replace(saved, `"table":"dim"`, `"table":"zzz"`, 1)
	if _, err := Load(strings.NewReader(otherOnly), other, w); err == nil {
		t.Error("layout with unknown table accepted")
	}
	// nil workload is tolerated.
	loaded, err := Load(strings.NewReader(saved), ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Workload() == nil {
		t.Error("nil workload should default to empty")
	}
	_ = workload.NewWorkload()
}
