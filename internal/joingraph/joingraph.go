// Package joingraph analyzes a query's join structure for predicate
// induction (§4.1 of the paper). It enumerates legal induction paths — the
// chains of equijoins a simple predicate can be passed through — and matches
// a query's join graph against a stored cut's induction path at routing time
// (§4.1.2).
//
// Legality follows §4.1.1: direction rules per join type, no induction
// through full outer joins, outer-to-inner only for correlated subqueries,
// and (as a policy, not a correctness requirement) every hop must originate
// from a column with unique values so inserts and deletes stay cheap (§5.2).
package joingraph

import (
	"fmt"
	"strings"

	"mto/internal/workload"
)

// UniqueFn reports whether a base table's column is known to hold unique
// values (e.g. a primary key). It gates induction hops.
type UniqueFn func(table, column string) bool

// AllowAll is a UniqueFn that disables the unique-source restriction; it is
// used by the ablation study of §4.1.1's policy.
func AllowAll(string, string) bool { return true }

// Hop is one step of an induction path, at base-table granularity: the
// predicate moves from FromTable to ToTable through the equijoin
// FromTable.FromColumn = ToTable.ToColumn.
type Hop struct {
	FromTable  string
	FromColumn string
	ToTable    string
	ToColumn   string
	Type       workload.JoinType
}

// JoinKey canonically identifies the underlying join regardless of hop
// direction; cardinality adjustment uses it to avoid double-counting one
// join that appears on multiple intersecting cuts (§4.2).
func (h Hop) JoinKey() string {
	a := h.FromTable + "." + h.FromColumn
	b := h.ToTable + "." + h.ToColumn
	if a > b {
		a, b = b, a
	}
	return a + "=" + b
}

// String renders the hop.
func (h Hop) String() string {
	return fmt.Sprintf("%s.%s→%s.%s", h.FromTable, h.FromColumn, h.ToTable, h.ToColumn)
}

// Path is an induction path from a source table (where the simple predicate
// lives) to a target table (which receives the join-induced predicate).
type Path struct {
	Hops []Hop
}

// Source returns the base table the path originates from.
func (p Path) Source() string { return p.Hops[0].FromTable }

// Target returns the base table the path ends at.
func (p Path) Target() string { return p.Hops[len(p.Hops)-1].ToTable }

// Depth returns the induction depth (number of joins traversed).
func (p Path) Depth() int { return len(p.Hops) }

// TargetColumn returns the join column on the target table — the column the
// literal IN cut constrains.
func (p Path) TargetColumn() string { return p.Hops[len(p.Hops)-1].ToColumn }

// Extend returns a new path with h appended.
func (p Path) Extend(h Hop) Path {
	hops := make([]Hop, len(p.Hops)+1)
	copy(hops, p.Hops)
	hops[len(p.Hops)] = h
	return Path{Hops: hops}
}

// JoinKeys returns the canonical identity of every join on the path.
func (p Path) JoinKeys() []string {
	out := make([]string, len(p.Hops))
	for i, h := range p.Hops {
		out[i] = h.JoinKey()
	}
	return out
}

// String renders "C →CKEY B →BKEY A"-style path text.
func (p Path) String() string {
	var sb strings.Builder
	sb.WriteString(p.Hops[0].FromTable)
	for _, h := range p.Hops {
		fmt.Fprintf(&sb, " →%s %s", h.FromColumn, h.ToTable)
	}
	return sb.String()
}

// aliasHop is a hop at alias granularity during enumeration.
type aliasHop struct {
	hop     Hop
	toAlias string
}

// legalHopsFrom returns the hops leaving fromAlias that induction may take.
func legalHopsFrom(q *workload.Query, fromAlias string, unique UniqueFn) []aliasHop {
	var out []aliasHop
	for _, j := range q.Joins {
		var h Hop
		var toAlias string
		switch fromAlias {
		case j.Left:
			if !j.Type.CanInduceLeftToRight() {
				continue
			}
			// Correlated subqueries only receive predicates, never
			// export them (§4.1.1).
			if j.CorrelatedInner == j.Left {
				continue
			}
			h = Hop{
				FromTable: q.BaseTable(j.Left), FromColumn: j.LeftColumn,
				ToTable: q.BaseTable(j.Right), ToColumn: j.RightColumn,
				Type: j.Type,
			}
			toAlias = j.Right
		case j.Right:
			if !j.Type.CanInduceRightToLeft() {
				continue
			}
			if j.CorrelatedInner == j.Right {
				continue
			}
			h = Hop{
				FromTable: q.BaseTable(j.Right), FromColumn: j.RightColumn,
				ToTable: q.BaseTable(j.Left), ToColumn: j.LeftColumn,
				Type: j.Type,
			}
			toAlias = j.Left
		default:
			continue
		}
		if !unique(h.FromTable, h.FromColumn) {
			continue
		}
		out = append(out, aliasHop{hop: h, toAlias: toAlias})
	}
	return out
}

// PathsFrom enumerates every legal simple induction path in q that starts at
// sourceAlias, up to maxDepth hops. Paths never revisit an alias, so self
// joins behave as two distinct logical tables.
func PathsFrom(q *workload.Query, sourceAlias string, unique UniqueFn, maxDepth int) []Path {
	if maxDepth <= 0 {
		return nil
	}
	var out []Path
	visited := map[string]bool{sourceAlias: true}
	var walk func(alias string, prefix Path)
	walk = func(alias string, prefix Path) {
		if len(prefix.Hops) >= maxDepth {
			return
		}
		for _, ah := range legalHopsFrom(q, alias, unique) {
			if visited[ah.toAlias] {
				continue
			}
			p := prefix.Extend(ah.hop)
			out = append(out, p)
			visited[ah.toAlias] = true
			walk(ah.toAlias, p)
			visited[ah.toAlias] = false
		}
	}
	walk(sourceAlias, Path{})
	return out
}

// MatchPath reports whether q's join graph shares the induction path: there
// is a chain of q's join edges realizing every hop (same base tables, same
// join columns, legal direction). On success it returns the alias(es) of the
// path's source table from which the chain can start — the router intersects
// the query's filters on those aliases with the cut's source predicate
// (§4.1.2).
func MatchPath(q *workload.Query, p Path) ([]string, bool) {
	if len(p.Hops) == 0 {
		return nil, false
	}
	// frontier[i] = set of aliases reachable after matching i hops, keyed by
	// the source alias the chain started from.
	type state struct{ current, source string }
	var frontier []state
	for _, a := range q.AliasesOf(p.Source()) {
		frontier = append(frontier, state{current: a, source: a})
	}
	for _, hop := range p.Hops {
		var next []state
		seen := map[state]bool{}
		for _, st := range frontier {
			for _, ah := range legalHopsFrom(q, st.current, AllowAll) {
				// Match tables and columns; the join type may differ
				// (e.g. a semi join shares an inner join's path) as
				// long as the direction is legal, which
				// legalHopsFrom already enforced.
				if ah.hop.FromTable != hop.FromTable || ah.hop.FromColumn != hop.FromColumn ||
					ah.hop.ToTable != hop.ToTable || ah.hop.ToColumn != hop.ToColumn {
					continue
				}
				ns := state{current: ah.toAlias, source: st.source}
				if !seen[ns] {
					seen[ns] = true
					next = append(next, ns)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			return nil, false
		}
	}
	srcSet := map[string]bool{}
	var sources []string
	for _, st := range frontier {
		if !srcSet[st.source] {
			srcSet[st.source] = true
			sources = append(sources, st.source)
		}
	}
	return sources, true
}
