package joingraph

import (
	"testing"

	"mto/internal/workload"
)

// uniqueKeys marks "id"-suffixed columns on dimension-style tables unique.
func uniqueKeys(table, column string) bool {
	switch table + "." + column {
	case "region.rkey", "nation.nkey", "customer.ckey", "orders.okey", "dim.id":
		return true
	}
	return false
}

// snowflakeQuery builds region ⋈ nation ⋈ customer ⋈ orders ⋈ lineitem.
func snowflakeQuery() *workload.Query {
	q := workload.NewQuery("snow",
		workload.TableRef{Table: "region"},
		workload.TableRef{Table: "nation"},
		workload.TableRef{Table: "customer"},
		workload.TableRef{Table: "orders"},
		workload.TableRef{Table: "lineitem"},
	)
	q.AddJoin("region", "rkey", "nation", "n_rkey")
	q.AddJoin("nation", "nkey", "customer", "c_nkey")
	q.AddJoin("customer", "ckey", "orders", "o_ckey")
	q.AddJoin("orders", "okey", "lineitem", "l_okey")
	return q
}

func pathStrings(ps []Path) map[string]bool {
	out := map[string]bool{}
	for _, p := range ps {
		out[p.String()] = true
	}
	return out
}

func TestJoinTypeDirections(t *testing.T) {
	cases := []struct {
		jt     workload.JoinType
		lr, rl bool
	}{
		{workload.InnerJoin, true, true},
		{workload.LeftOuterJoin, true, false},
		{workload.RightOuterJoin, false, true},
		{workload.FullOuterJoin, false, false},
		{workload.SemiJoin, true, true},
		{workload.LeftAntiSemiJoin, true, false},
		{workload.RightAntiSemiJoin, false, true},
	}
	for _, c := range cases {
		if got := c.jt.CanInduceLeftToRight(); got != c.lr {
			t.Errorf("%s L→R = %v, want %v", c.jt, got, c.lr)
		}
		if got := c.jt.CanInduceRightToLeft(); got != c.rl {
			t.Errorf("%s R→L = %v, want %v", c.jt, got, c.rl)
		}
	}
}

func TestPathsFromSnowflake(t *testing.T) {
	q := snowflakeQuery()
	// From region, uniqueness allows the full chain to lineitem (depth 4,
	// as in the paper's TPC-H example, §6.2.1).
	paths := PathsFrom(q, "region", uniqueKeys, 8)
	got := pathStrings(paths)
	want := []string{
		"region →rkey nation",
		"region →rkey nation →nkey customer",
		"region →rkey nation →nkey customer →ckey orders",
		"region →rkey nation →nkey customer →ckey orders →okey lineitem",
	}
	if len(paths) != len(want) {
		t.Fatalf("got %d paths: %v", len(paths), got)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing path %q", w)
		}
	}
	deepest := paths[len(paths)-1]
	if deepest.Depth() != 4 || deepest.Source() != "region" || deepest.Target() != "lineitem" {
		t.Errorf("deepest path metadata wrong: %s depth=%d", deepest, deepest.Depth())
	}
	if deepest.TargetColumn() != "l_okey" {
		t.Errorf("TargetColumn = %q", deepest.TargetColumn())
	}
	if len(deepest.JoinKeys()) != 4 {
		t.Error("JoinKeys length wrong")
	}
}

func TestUniqueRestrictionBlocksFactToDim(t *testing.T) {
	q := snowflakeQuery()
	// lineitem.l_okey is not unique, so no induction out of lineitem.
	if paths := PathsFrom(q, "lineitem", uniqueKeys, 8); len(paths) != 0 {
		t.Errorf("expected no paths from fact table, got %v", pathStrings(paths))
	}
	// With the restriction disabled (ablation), paths exist.
	if paths := PathsFrom(q, "lineitem", AllowAll, 8); len(paths) == 0 {
		t.Error("AllowAll should enable fact→dim induction")
	}
}

func TestMaxDepth(t *testing.T) {
	q := snowflakeQuery()
	paths := PathsFrom(q, "region", uniqueKeys, 2)
	if len(paths) != 2 {
		t.Errorf("depth-2 cap gave %d paths", len(paths))
	}
	if paths := PathsFrom(q, "region", uniqueKeys, 0); paths != nil {
		t.Error("zero depth should give nil")
	}
}

func TestJoinTypeLegality(t *testing.T) {
	q := workload.NewQuery("outer",
		workload.TableRef{Table: "dim"},
		workload.TableRef{Table: "fact"},
	)
	q.AddTypedJoin(workload.Join{
		Left: "dim", LeftColumn: "id",
		Right: "fact", RightColumn: "dim_id",
		Type: workload.LeftOuterJoin,
	})
	// Left outer: dim (left) → fact (right) allowed.
	if paths := PathsFrom(q, "dim", uniqueKeys, 4); len(paths) != 1 {
		t.Errorf("left-outer L→R should be legal: %v", pathStrings(paths))
	}
	// fact → dim through a left outer join is illegal regardless of
	// uniqueness.
	if paths := PathsFrom(q, "fact", AllowAll, 4); len(paths) != 0 {
		t.Errorf("left-outer R→L should be illegal: %v", pathStrings(paths))
	}

	full := workload.NewQuery("full",
		workload.TableRef{Table: "dim"},
		workload.TableRef{Table: "fact"},
	)
	full.AddTypedJoin(workload.Join{
		Left: "dim", LeftColumn: "id",
		Right: "fact", RightColumn: "dim_id",
		Type: workload.FullOuterJoin,
	})
	if paths := PathsFrom(full, "dim", AllowAll, 4); len(paths) != 0 {
		t.Error("full outer joins must not induce")
	}
}

func TestCorrelatedSubqueryOneWay(t *testing.T) {
	q := workload.NewQuery("corr",
		workload.TableRef{Table: "dim"},
		workload.TableRef{Table: "fact"},
	)
	q.AddTypedJoin(workload.Join{
		Left: "dim", LeftColumn: "id",
		Right: "fact", RightColumn: "dim_id",
		Type:            workload.InnerJoin,
		CorrelatedInner: "fact",
	})
	if paths := PathsFrom(q, "dim", uniqueKeys, 4); len(paths) != 1 {
		t.Error("outer→subquery induction should be legal")
	}
	if paths := PathsFrom(q, "fact", AllowAll, 4); len(paths) != 0 {
		t.Error("subquery→outer induction must be illegal")
	}
}

func TestSelfJoin(t *testing.T) {
	q := workload.NewQuery("self",
		workload.TableRef{Table: "dim", Alias: "d1"},
		workload.TableRef{Table: "dim", Alias: "d2"},
	)
	q.AddJoin("d1", "id", "d2", "id")
	paths := PathsFrom(q, "d1", uniqueKeys, 4)
	if len(paths) != 1 {
		t.Fatalf("self join paths = %v", pathStrings(paths))
	}
	p := paths[0]
	if p.Source() != "dim" || p.Target() != "dim" {
		t.Errorf("self-join path = %s", p)
	}
	// No revisiting: path stops after one hop (d2 only connects back to d1).
	if p.Depth() != 1 {
		t.Errorf("self-join depth = %d", p.Depth())
	}
}

func TestHopJoinKeyCanonical(t *testing.T) {
	a := Hop{FromTable: "a", FromColumn: "x", ToTable: "b", ToColumn: "y"}
	b := Hop{FromTable: "b", FromColumn: "y", ToTable: "a", ToColumn: "x"}
	if a.JoinKey() != b.JoinKey() {
		t.Errorf("JoinKey not direction-invariant: %q vs %q", a.JoinKey(), b.JoinKey())
	}
	if a.String() == "" {
		t.Error("Hop.String empty")
	}
}

func TestMatchPath(t *testing.T) {
	q := snowflakeQuery()
	paths := PathsFrom(q, "region", uniqueKeys, 8)
	var deep Path
	for _, p := range paths {
		if p.Target() == "lineitem" {
			deep = p
		}
	}
	sources, ok := MatchPath(q, deep)
	if !ok || len(sources) != 1 || sources[0] != "region" {
		t.Errorf("MatchPath on owning query = %v, %v", sources, ok)
	}

	// A different query with the same join chain also matches.
	q2 := snowflakeQuery()
	q2.ID = "other"
	if _, ok := MatchPath(q2, deep); !ok {
		t.Error("structurally identical query should match")
	}

	// A query missing one join in the chain does not match.
	q3 := workload.NewQuery("partial",
		workload.TableRef{Table: "region"},
		workload.TableRef{Table: "nation"},
	)
	q3.AddJoin("region", "rkey", "nation", "n_rkey")
	if _, ok := MatchPath(q3, deep); ok {
		t.Error("partial join graph should not match a deep path")
	}
	// But it matches the one-hop path.
	if _, ok := MatchPath(q3, paths[0]); !ok {
		t.Error("one-hop path should match")
	}

	// A query joining on different columns does not match.
	q4 := workload.NewQuery("wrongcol",
		workload.TableRef{Table: "region"},
		workload.TableRef{Table: "nation"},
	)
	q4.AddJoin("region", "other", "nation", "n_rkey")
	if _, ok := MatchPath(q4, paths[0]); ok {
		t.Error("different join column should not match")
	}

	// Empty path never matches.
	if _, ok := MatchPath(q, Path{}); ok {
		t.Error("empty path matched")
	}

	// Semi join shares an inner join's path (type-insensitive matching).
	q5 := workload.NewQuery("semi",
		workload.TableRef{Table: "region"},
		workload.TableRef{Table: "nation"},
	)
	q5.AddTypedJoin(workload.Join{
		Left: "region", LeftColumn: "rkey",
		Right: "nation", RightColumn: "n_rkey",
		Type: workload.SemiJoin,
	})
	if _, ok := MatchPath(q5, paths[0]); !ok {
		t.Error("semi join should share the inner join path")
	}
}

func TestMatchPathSelfJoinSources(t *testing.T) {
	// Both aliases of a self join can be path sources.
	q := workload.NewQuery("self",
		workload.TableRef{Table: "dim", Alias: "d1"},
		workload.TableRef{Table: "dim", Alias: "d2"},
	)
	q.AddJoin("d1", "id", "d2", "id")
	p := Path{Hops: []Hop{{
		FromTable: "dim", FromColumn: "id", ToTable: "dim", ToColumn: "id",
		Type: workload.InnerJoin,
	}}}
	sources, ok := MatchPath(q, p)
	if !ok || len(sources) != 2 {
		t.Errorf("self-join sources = %v, %v", sources, ok)
	}
}
