module mto

go 1.22
