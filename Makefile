# Verification targets. `make check` is the full gate CI runs: build, vet,
# unit tests, and the race-enabled suite that guards the parallel workload
# executor's concurrency-safety invariant.

GO ?= go

.PHONY: build test vet race check bench bench-build bench-replay bench-induce bench-store bench-scan bench-agg bench-groupagg bench-reorg bench-serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet test race

# Replay-speedup and paper-figure benchmarks.
bench: bench-build bench-replay bench-induce bench-store bench-agg bench-groupagg bench-reorg bench-serve
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Construction/routing benchmarks with a JSON perf snapshot. Compares the
# bitset-based qd-tree build against the retained seed implementation and
# records the results in BENCH_build.json.
bench-build:
	$(GO) test -run='^$$' -bench='Build|AssignRecords|Optimize' -benchmem -count=1 \
		./internal/qdtree ./internal/core | $(GO) run ./cmd/benchjson -out BENCH_build.json

# Query-execution benchmarks with a JSON perf snapshot. Compares the
# vectorized scan/join kernels against the retained scalar reference path
# (and the parallel replay sweep) and records the results in
# BENCH_replay.json.
bench-replay:
	$(GO) test -run='^$$' -bench='ExecuteWorkload|WorkloadReplay' -benchmem -count=1 \
		. | $(GO) run ./cmd/benchjson -out BENCH_replay.json

# Persistent segment store and compressed-scan benchmarks with a JSON perf
# snapshot. Replays the SSB workload against the disk backend cold (0-byte
# buffer pool, on both the compressed-domain and full-decode scan paths)
# and warm (pool primed with the working set) next to the in-memory
# backend, runs the selective-scan microbenchmark (predicate evaluation on
# encoded pages + late materialization vs decode-everything), and records
# the results in BENCH_store.json.
bench-scan:
	$(GO) test -run='^$$' -bench='ReplayDisk|CompressedScan' -benchmem -count=1 \
		. ./internal/colstore | $(GO) run ./cmd/benchjson -out BENCH_store.json

bench-store: bench-scan

# Aggregation-pushdown benchmark with a JSON perf snapshot. Compares the
# compressed-domain fold (packed FOR sums over survivor bitmaps) against
# the materialize-then-fold fallback on a selective SUM, and records the
# results in BENCH_agg.json. The acceptance bar is >=3x fewer ns/op and
# >=10x fewer allocs/op for the compressed fold.
bench-agg:
	$(GO) test -run='^$$' -bench='CompressedAggregate' -benchmem -count=1 		./internal/colstore | $(GO) run ./cmd/benchjson -out BENCH_agg.json

# Grouped-aggregation (GROUP BY) pushdown benchmark with a JSON perf
# snapshot. Compares the compressed grouped fold (dictionary-slot scatter
# over encoded pages) against the materialize-then-hash-fold fallback on a
# selective dict-grouped SUM, and records the results in
# BENCH_groupagg.json. The acceptance bar is >=2x fewer ns/op and fewer
# allocs/op for the compressed grouped fold.
bench-groupagg:
	$(GO) test -run='^$$' -bench='CompressedGroupedAggregate' -benchmem -count=1 \
		./internal/colstore | $(GO) run ./cmd/benchjson -out BENCH_groupagg.json

# Incremental-reorganization daemon benchmark with a JSON result snapshot.
# Drives the reorgd daemon over the TPC-H 1-11 → 12-22 drift stream and
# records stale/full/daemon blocks-per-query, the recovered fraction of the
# stale→full gap, per-cycle write accounting, and the full deterministic
# cycle trace in BENCH_reorg.json.
bench-reorg:
	$(GO) run ./cmd/mtobench -exp reorg -daemon -sf 0.01 -per-template 2 \
		-benchjson BENCH_reorg.json

# Sustained-load multi-tenant serving benchmark with a JSON result
# snapshot. Boots the three-tenant serving stack (SSB, drifting TPC-H with
# a live reorg daemon, TPC-DS), drives 1M queries through admission
# control, fair queueing, and the result cache, samples served-vs-direct
# identity throughout, and records throughput, p50/p99/p99.9 latency,
# cache and buffer-pool hit rates, and the daemon's cycle trace in
# BENCH_serve.json. The acceptance bar is >=1 live generation swap
# mid-load with every verified sample byte-identical.
bench-serve:
	mkdir -p /tmp/mto-serve-segments
	$(GO) run ./cmd/mtobench -exp serve -store disk \
		-datadir /tmp/mto-serve-segments -cache-mb 64 \
		-serve-queries 1000000 -serve-benchjson BENCH_serve.json

# Induced-predicate evaluation benchmarks with a JSON perf snapshot.
# Compares the batched work-sharing evaluator against the retained scalar
# reference on the TPC-H induction workload, plus the end-to-end Optimize
# path that feeds through it, and records the results in BENCH_induce.json.
bench-induce:
	$(GO) test -run='^$$' -bench='InduceEvaluate|Optimize' -benchmem -count=1 \
		./internal/induce ./internal/core | $(GO) run ./cmd/benchjson -out BENCH_induce.json
