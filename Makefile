# Verification targets. `make check` is the full gate CI runs: build, vet,
# unit tests, and the race-enabled suite that guards the parallel workload
# executor's concurrency-safety invariant.

GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet test race

# Replay-speedup and paper-figure benchmarks.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
