// Package mto is an instance-optimized data layout framework for
// multi-table analytical datasets, reproducing "Instance-Optimized Data
// Layouts for Cloud Analytics Workloads" (Ding et al., SIGMOD 2021).
//
// Given a dataset (a set of columnar tables) and a query workload (joins +
// filter predicates), MTO learns one qd-tree per table that assigns records
// to storage blocks so that the workload's queries can skip as many blocks
// as possible. Its distinguishing idea is sideways information passing at
// layout time: filter predicates are pushed through equijoins as
// join-induced predicates and become candidate cuts for the joined tables'
// trees.
//
// The typical flow:
//
//	ds := mto.NewDataset()            // build tables, add rows
//	w := mto.NewWorkload(...)         // describe the expected queries
//	sys, err := mto.Open(ds, w, mto.Config{BlockSize: 500_000})
//	res, err := sys.Execute(query)    // res.BlocksRead, res.Seconds, ...
//
// A System owns the learned layout, a simulated block store with I/O
// accounting, and an execution engine with zone-map skipping. It also
// exposes the paper's adaptivity mechanisms: partial reorganization under
// workload shift (Reorganize) and incremental maintenance under inserts
// (Insert).
package mto

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"mto/internal/block"
	"mto/internal/colstore"
	"mto/internal/core"
	"mto/internal/engine"
	"mto/internal/layout"
	"mto/internal/predicate"
	"mto/internal/qdtree"
	"mto/internal/relation"
	"mto/internal/sqlparse"
	"mto/internal/value"
	"mto/internal/workload"
)

// Re-exported data-model types. These are the building blocks for datasets
// and workloads; see the examples/ directory for end-to-end usage.
type (
	// Value is a typed scalar (int, float, string, date, or null).
	Value = value.Value
	// Column describes one table attribute.
	Column = relation.Column
	// Schema is an ordered set of columns.
	Schema = relation.Schema
	// Table is an append-only columnar table.
	Table = relation.Table
	// Dataset is a named collection of tables.
	Dataset = relation.Dataset
	// Query is one structured query: table refs, join edges, filters.
	Query = workload.Query
	// TableRef is one table occurrence in a query.
	TableRef = workload.TableRef
	// Join is an equijoin edge.
	Join = workload.Join
	// JoinType enumerates inner/outer/semi/anti-semi joins.
	JoinType = workload.JoinType
	// Workload is an ordered multiset of queries.
	Workload = workload.Workload
	// Predicate is a filter predicate AST node.
	Predicate = predicate.Predicate
	// Op is a comparison operator.
	Op = predicate.Op
)

// Scalar constructors.
var (
	Int      = value.Int
	Float    = value.Float
	String   = value.String
	Date     = value.Date
	MustDate = value.MustDate
	Null     = value.Null
)

// Column kinds.
const (
	KindInt    = value.KindInt
	KindFloat  = value.KindFloat
	KindString = value.KindString
)

// Comparison operators.
const (
	Eq = predicate.Eq
	Ne = predicate.Ne
	Lt = predicate.Lt
	Le = predicate.Le
	Gt = predicate.Gt
	Ge = predicate.Ge
)

// Join types.
const (
	InnerJoin         = workload.InnerJoin
	LeftOuterJoin     = workload.LeftOuterJoin
	RightOuterJoin    = workload.RightOuterJoin
	FullOuterJoin     = workload.FullOuterJoin
	SemiJoin          = workload.SemiJoin
	LeftAntiSemiJoin  = workload.LeftAntiSemiJoin
	RightAntiSemiJoin = workload.RightAntiSemiJoin
)

// Aggregate operators (Query.Aggregate). Aggregates ride along with a
// query's filters: the engine computes them over the rows that survive,
// and capable backends fold supported ones directly on encoded pages.
const (
	AggSum   = workload.AggSum
	AggCount = workload.AggCount
	AggMin   = workload.AggMin
	AggMax   = workload.AggMax
	AggAvg   = workload.AggAvg
)

// AggValue is one computed aggregate in Result.Aggregates.
type AggValue = engine.AggValue

// Dataset / schema / workload constructors.
var (
	NewDataset  = relation.NewDataset
	NewSchema   = relation.NewSchema
	MustSchema  = relation.MustSchema
	NewTable    = relation.NewTable
	NewQuery    = workload.NewQuery
	NewWorkload = workload.NewWorkload
)

// Predicate constructors.
var (
	Compare        = predicate.NewComparison
	In             = predicate.NewIn
	NotIn          = predicate.NewNotIn
	Like           = predicate.NewLike
	NotLike        = predicate.NewNotLike
	And            = predicate.NewAnd
	Or             = predicate.NewOr
	TruePredicate  = predicate.True
	FalsePredicate = predicate.False
)

// Between returns col >= lo AND col <= hi.
func Between(col string, lo, hi Value) Predicate {
	return And(Compare(col, Ge, lo), Compare(col, Le, hi))
}

// Config tunes layout learning and the simulated store.
type Config struct {
	// BlockSize is the target records per storage block. Required.
	BlockSize int
	// SampleRate optimizes on a uniform sample (§4.2); 0 or 1 disables.
	SampleRate float64
	// DisableJoinInduction turns MTO into STO (single-table qd-trees).
	DisableJoinInduction bool
	// MaxInductionDepth caps join-induced predicate paths (default 4).
	MaxInductionDepth int
	// LeafOrderKeys optionally orders records inside each qd-tree leaf by
	// a named column per table, keeping zone maps effective for range
	// filters within large leaves.
	LeafOrderKeys map[string]string
	// Seed drives sampling.
	Seed int64
	// Parallelism bounds the worker budget of offline optimization:
	// qd-tree construction (candidate precompute, cut scoring, subtree
	// recursion) and record routing. 0 selects GOMAXPROCS, 1 forces the
	// sequential paths; the learned layout is identical at any setting.
	Parallelism int
	// CostModel overrides the simulated I/O cost calibration.
	CostModel *block.CostModel
	// Store selects the storage backend: "mem" (default) keeps blocks in
	// memory; "disk" persists each table layout as a columnar segment file
	// under DataDir and reads blocks back through a buffer-pool cache.
	// Both backends charge identical I/O accounting, so Results are
	// byte-identical either way.
	Store string
	// DataDir is the segment directory for Store "disk". Required then.
	DataDir string
	// CacheMB is the disk backend's buffer-pool capacity in MiB of decoded
	// block data. 0 disables caching (every read hits disk).
	CacheMB int
}

// openBackend constructs the configured storage backend. Shadow backends
// (for ReorganizeAsync) get their own segment subdirectory so the shadow
// reorganization never disturbs the live segments until the swap.
func openBackend(cfg Config, cost block.CostModel, shadow bool) (block.Backend, error) {
	switch cfg.Store {
	case "", "mem":
		return block.NewStore(cost), nil
	case "disk":
		dir := cfg.DataDir
		if dir == "" {
			return nil, fmt.Errorf(`mto: Store "disk" requires DataDir`)
		}
		if shadow {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, fmt.Errorf("mto: create data dir: %w", err)
			}
			var err error
			dir, err = os.MkdirTemp(dir, "reorg-shadow-")
			if err != nil {
				return nil, fmt.Errorf("mto: create shadow dir: %w", err)
			}
		}
		return colstore.NewStore(dir, int64(cfg.CacheMB)<<20, cost)
	default:
		return nil, fmt.Errorf("mto: unknown Store %q (want \"mem\" or \"disk\")", cfg.Store)
	}
}

// System is a learned multi-table layout installed into a simulated block
// store, ready to execute queries with block skipping.
//
// A System is safe for concurrent Execute calls. Mutating operations
// (Reorganize, Insert) serialize with queries; ReorganizeAsync runs the
// §5.1.1 shadow workflow — reorganizing a copy while queries keep hitting
// the current layout, then swapping atomically.
type System struct {
	mu     sync.RWMutex
	opt    *core.Optimizer
	design *layout.Design
	store  block.Backend
	ds     *relation.Dataset
	eng    *engine.Engine

	// newShadow builds a fresh backend of the configured kind for the
	// §5.1.1 shadow-reorganization workflow.
	newShadow func() (block.Backend, error)

	reorgActive atomic.Bool
}

// Open learns the layout for ds under w and installs it.
func Open(ds *Dataset, w *Workload, cfg Config) (*System, error) {
	opt, err := core.Optimize(ds, w, core.Options{
		BlockSize:         cfg.BlockSize,
		SampleRate:        cfg.SampleRate,
		JoinInduction:     !cfg.DisableJoinInduction,
		MaxInductionDepth: cfg.MaxInductionDepth,
		LeafOrderKeys:     cfg.LeafOrderKeys,
		Seed:              cfg.Seed,
		Parallelism:       cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	design, err := opt.BuildDesign()
	if err != nil {
		return nil, err
	}
	cost := block.DefaultCostModel()
	if cfg.CostModel != nil {
		cost = *cfg.CostModel
	}
	store, err := openBackend(cfg, cost, false)
	if err != nil {
		return nil, err
	}
	if _, err := design.Install(store, nil, 0); err != nil {
		closeBackend(store)
		return nil, err
	}
	s := &System{opt: opt, design: design, store: store, ds: ds,
		newShadow: func() (block.Backend, error) { return openBackend(cfg, cost, true) }}
	s.resetEngine()
	return s, nil
}

// closeBackend releases a backend's resources when it holds any (the disk
// backend's open segment files); the in-memory backend is a no-op.
func closeBackend(b block.Backend) error {
	if c, ok := b.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Close releases the storage backend. Only needed with Store "disk",
// where open segment files are held; safe to call on any System.
func (s *System) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return closeBackend(s.store)
}

func (s *System) resetEngine() {
	s.eng = engine.New(s.store, s.design, s.ds, engine.CloudDWOptions())
}

// Result is one query's execution outcome.
type Result = engine.Result

// WorkloadResult aggregates a whole workload's execution: per-query
// results in input order plus workload-level totals.
type WorkloadResult = engine.WorkloadResult

// Execute runs q against the layout, skipping blocks via the per-table
// qd-trees and zone maps, and returns I/O metrics and simulated runtime.
func (s *System) Execute(q *Query) (*Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.Execute(q)
}

// ExecuteWorkload replays the queries over a bounded worker pool
// (parallelism 0 selects GOMAXPROCS, 1 runs sequentially). Per-query
// results land in input order and every aggregate — including simulated
// Seconds — is identical to a sequential replay; only wall-clock time
// changes. Queries see one consistent layout: mutating operations
// (Reorganize, Insert, a ReorganizeAsync swap) wait for the replay.
func (s *System) ExecuteWorkload(queries []*Query, parallelism int) (*WorkloadResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return engine.RunWorkload(s.eng, queries, engine.RunOptions{Parallelism: parallelism})
}

// Stats summarizes the learned qd-trees (cut counts, induction depths,
// memory — the paper's Table 2 quantities).
type Stats = qdtree.Stats

// Stats returns aggregate tree statistics.
func (s *System) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.opt.Stats()
}

// TreeDump renders one table's qd-tree as text.
func (s *System) TreeDump(table string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.opt.Tree(table)
	if t == nil {
		return "", fmt.Errorf("mto: no tree for table %q", table)
	}
	return t.Dump(), nil
}

// Timings reports offline optimization and record-routing times.
type Timings = core.Timings

// Timings returns the offline time breakdown.
func (s *System) Timings() Timings { return s.opt.Timings() }

// TotalBlocks returns the number of blocks across all tables.
func (s *System) TotalBlocks() int { return s.store.TotalBlocks() }

// IOStats returns cumulative simulated I/O counters.
func (s *System) IOStats() block.Stats { return s.store.Stats() }

// ReorgOptions parameterizes the §5.1 reward function.
type ReorgOptions struct {
	// ExpectedQueries is q: how many queries from the observed
	// distribution are expected before the next workload shift.
	ExpectedQueries float64
	// WriteReadRatio is w (default 100).
	WriteReadRatio float64
}

// ReorgReport summarizes an applied (possibly partial) reorganization.
type ReorgReport struct {
	// FracDataReorganized is the fraction of records moved.
	FracDataReorganized float64
	// BlocksRewritten counts physical block writes.
	BlocksRewritten int
	// PlanSeconds is the wall-clock re-optimization time.
	PlanSeconds float64
	// SimWriteSeconds is the simulated cost of rewriting the blocks.
	SimWriteSeconds float64
}

// Reorganize adapts the layout to an observed (shifted) workload: it plans
// the max-reward set of qd-tree subtrees to rebuild (§5.1), applies the
// plan, and reinstalls the affected blocks. A non-positive reward plan
// leaves the layout untouched. Queries are blocked while it runs; use
// ReorganizeAsync to keep serving them (§5.1.1).
func (s *System) Reorganize(observed *Workload, opts ReorgOptions) (ReorgReport, error) {
	if s.reorgActive.Load() {
		return ReorgReport{}, fmt.Errorf("mto: a background reorganization is in progress")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reorganizeLocked(s.opt, s.design, s.store, observed, opts, true)
}

// reorganizeLocked runs plan+apply against the given state. When inPlace is
// true the system's engine is rebuilt afterwards.
func (s *System) reorganizeLocked(opt *core.Optimizer, design *layout.Design, store block.Backend,
	observed *Workload, opts ReorgOptions, inPlace bool) (ReorgReport, error) {
	var report ReorgReport
	plans, err := opt.PlanReorg(observed, core.ReorgConfig{
		Q: opts.ExpectedQueries,
		W: opts.WriteReadRatio,
	}, design)
	if err != nil {
		return report, err
	}
	for _, p := range plans {
		report.PlanSeconds += p.PlanSeconds
	}
	stats, err := opt.ApplyReorg(plans, design, store)
	if err != nil {
		return report, err
	}
	report.FracDataReorganized = stats.FracDataReorganized
	report.BlocksRewritten = stats.BlocksRewritten
	report.SimWriteSeconds = stats.SimSeconds
	if inPlace {
		s.resetEngine()
	}
	return report, nil
}

// AsyncReorg is delivered when a background reorganization finishes.
type AsyncReorg struct {
	Report ReorgReport
	Err    error
}

// ReorganizeAsync performs the reorganization on a shadow copy of the
// layout while queries continue against the current one, then swaps the
// new layout in atomically (§5.1.1: "a separate process performs partial
// reorganization using a partial copy of the data; after reorganization
// completes, the new layout is swapped in"). At most one background
// reorganization may run at a time, and Insert/Reorganize are rejected
// while one is active (their effects would be lost at the swap).
func (s *System) ReorganizeAsync(observed *Workload, opts ReorgOptions) (<-chan AsyncReorg, error) {
	if !s.reorgActive.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("mto: a background reorganization is already in progress")
	}
	done := make(chan AsyncReorg, 1)
	// Snapshot under the read lock; the shadow state shares only
	// immutable pieces with the live one.
	s.mu.RLock()
	shadowOpt := s.opt.Clone()
	shadowDesign := s.design.Clone()
	s.mu.RUnlock()
	go func() {
		defer s.reorgActive.Store(false)
		shadowStore, err := s.newShadow()
		if err != nil {
			done <- AsyncReorg{Err: err}
			return
		}
		report, err := s.reorganizeLocked(shadowOpt, shadowDesign, shadowStore, observed, opts, false)
		if err != nil {
			closeBackend(shadowStore)
			done <- AsyncReorg{Report: report, Err: err}
			return
		}
		// Swap the finished layout in. The swap excludes in-flight queries
		// (they hold the read lock), so the retired backend can be closed.
		s.mu.Lock()
		old := s.store
		s.opt = shadowOpt
		s.design = shadowDesign
		s.store = shadowStore
		s.resetEngine()
		s.mu.Unlock()
		closeBackend(old)
		done <- AsyncReorg{Report: report}
	}()
	return done, nil
}

// InsertReport summarizes an absorbed insert (§5.2).
type InsertReport = core.ChangeStats

// Insert absorbs rows newly appended to the named base table: join-induced
// cuts with the table on their induction path are updated incrementally,
// and the new records are routed to blocks. rows are the indexes of the
// already-appended records.
func (s *System) Insert(table string, rows []int) (InsertReport, error) {
	if s.reorgActive.Load() {
		return InsertReport{}, fmt.Errorf("mto: a background reorganization is in progress")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.opt.ApplyInsert(table, rows, s.design, s.store)
	if err != nil {
		return st, err
	}
	s.resetEngine()
	return st, nil
}

// Name reports "MTO" or "STO" depending on the configuration.
func (s *System) Name() string { return s.opt.Name() }

// SaveLayout writes the learned layout (per-table qd-trees and optimizer
// options) to w as JSON. Literal join-induced key sets are not persisted —
// they are rebuilt against the dataset on load, so a saved layout stays
// valid across data changes.
func (s *System) SaveLayout(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.opt.Save(w)
}

// OpenSaved reconstructs a System from a layout previously written by
// SaveLayout, re-evaluating join-induced cuts against ds and re-routing
// every record. w is the workload used for future Reorganize calls (it may
// be nil when reorganization is not needed).
func OpenSaved(r io.Reader, ds *Dataset, w *Workload, cfg Config) (*System, error) {
	opt, err := core.Load(r, ds, w)
	if err != nil {
		return nil, err
	}
	design, err := opt.BuildDesign()
	if err != nil {
		return nil, err
	}
	cost := block.DefaultCostModel()
	if cfg.CostModel != nil {
		cost = *cfg.CostModel
	}
	store, err := openBackend(cfg, cost, false)
	if err != nil {
		return nil, err
	}
	if _, err := design.Install(store, nil, 0); err != nil {
		closeBackend(store)
		return nil, err
	}
	s := &System{opt: opt, design: design, store: store, ds: ds,
		newShadow: func() (block.Backend, error) { return openBackend(cfg, cost, true) }}
	s.resetEngine()
	return s, nil
}

// ParseSQL parses one SQL SELECT statement into a Query. The supported
// subset covers the filter/join shapes that matter for layout: comma joins
// and explicit [INNER|LEFT|RIGHT] JOIN ... ON, comparisons, BETWEEN, IN
// lists, [NOT] LIKE, AND/OR/NOT, DATE 'yyyy-mm-dd' literals, and [NOT]
// IN / [NOT] EXISTS subqueries (mapped to semi / anti-semi joins). ds, when
// non-nil, resolves unqualified column names against table schemas.
func ParseSQL(sql string, ds *Dataset) (*Query, error) { return sqlparse.Parse(sql, ds) }

// ParseSQLWorkload parses several SQL statements into one workload with ids
// q1, q2, ...
func ParseSQLWorkload(ds *Dataset, sqls ...string) (*Workload, error) {
	return sqlparse.ParseWorkload(ds, sqls...)
}

// ReadCSV parses CSV (with a header row) into a table with the given
// schema; see Table.WriteCSV for the inverse. Empty fields are NULL and
// Date-flagged columns accept ISO dates.
func ReadCSV(schema *Schema, r io.Reader) (*Table, error) { return relation.ReadCSV(schema, r) }
