package mto_test

import (
	"fmt"
	"log"

	"mto"
)

// Example demonstrates the end-to-end flow: build a star dataset, describe
// the workload (filters on the dimension table only), learn the layout, and
// execute with join-aware block skipping.
func Example() {
	ds := mto.NewDataset()
	dim := mto.NewTable(mto.MustSchema("dim",
		mto.Column{Name: "id", Type: mto.KindInt, Unique: true},
		mto.Column{Name: "color", Type: mto.KindString},
	))
	colors := []string{"red", "green", "blue", "gold"}
	for i := 0; i < 400; i++ {
		dim.MustAppendRow(mto.Int(int64(i)), mto.String(colors[i%4]))
	}
	fact := mto.NewTable(mto.MustSchema("fact",
		mto.Column{Name: "fid", Type: mto.KindInt, Unique: true},
		mto.Column{Name: "dim_id", Type: mto.KindInt},
	))
	for i := 0; i < 40000; i++ {
		fact.MustAppendRow(mto.Int(int64(i)), mto.Int(int64(i*7919%400)))
	}
	ds.MustAddTable(dim)
	ds.MustAddTable(fact)

	w := mto.NewWorkload()
	for _, c := range colors {
		q := mto.NewQuery("by-"+c, mto.TableRef{Table: "dim"}, mto.TableRef{Table: "fact"})
		q.AddJoin("dim", "id", "fact", "dim_id")
		q.Filter("dim", mto.Compare("color", mto.Eq, mto.String(c)))
		w.Add(q)
	}

	sys, err := mto.Open(ds, w, mto.Config{BlockSize: 2000})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Execute(w.Queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("by-red reads %d of %d blocks\n", res.BlocksRead, res.TotalBlocks)
	// Output:
	// by-red reads 6 of 21 blocks
}

// Example_sql shows the same workload written in SQL.
func Example_sql() {
	ds := mto.NewDataset()
	users := mto.NewTable(mto.MustSchema("users",
		mto.Column{Name: "uid", Type: mto.KindInt, Unique: true},
		mto.Column{Name: "country", Type: mto.KindString},
	))
	for i := 0; i < 100; i++ {
		users.MustAppendRow(mto.Int(int64(i)), mto.String([]string{"DE", "FR"}[i%2]))
	}
	ds.MustAddTable(users)

	q, err := mto.ParseSQL(`SELECT COUNT(*) FROM users WHERE country = 'DE'`, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q)
	// Output:
	// Q[](users) σ[users: country = "DE"]
}
