package mto

// One benchmark per table and figure of the paper's evaluation (§6). Each
// bench drives the corresponding harness in internal/experiments at a small
// scale and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` regenerates every result. The mtobench CLI
// runs the same harnesses at larger scales with full printed tables.

import (
	"fmt"
	"io"
	"math"
	"testing"

	"mto/internal/bitmap"
	"mto/internal/engine"
	"mto/internal/experiments"
)

// benchScale keeps each iteration around a second.
func benchScale() experiments.Scale {
	s := experiments.DefaultScale()
	s.SF = 0.005
	s.PerTemplate = 2
	return s
}

func BenchmarkFig10aSSB(b *testing.B)   { benchFig10a(b, "ssb") }
func BenchmarkFig10aTPCH(b *testing.B)  { benchFig10a(b, "tpch") }
func BenchmarkFig10aTPCDS(b *testing.B) { benchFig10a(b, "tpcds") }

func benchFig10a(b *testing.B, bench string) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bb, err := experiments.BenchByName(bench, s)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := experiments.Fig10a([]*experiments.Bench{bb})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == experiments.MethodMTO {
				b.ReportMetric(r.Normalized, "mto-norm-blocks")
			}
		}
	}
}

func BenchmarkFig10bcSSB(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10bc([]*experiments.Bench{experiments.SSBBench(s)})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == experiments.MethodMTO {
				b.ReportMetric(r.NormFraction, "mto-norm-fraction")
				b.ReportMetric(r.NormSeconds, "mto-norm-runtime")
			}
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(experiments.AllBenches(s))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Bench == "TPC-H" {
				b.ReportMetric(float64(r.JoinInducedCuts), "tpch-induced-cuts")
				b.ReportMetric(float64(r.MaxInductionDepth), "tpch-max-depth")
			}
		}
	}
}

func BenchmarkFig11SSB(b *testing.B) {
	s := benchScale()
	s.SF = 0.02
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(experiments.SSBBench(s))
		if err != nil {
			b.Fatal(err)
		}
		improved := 0
		for _, r := range rows {
			if r.Versus == experiments.MethodBaseline && r.Reduction > 0 {
				improved++
			}
		}
		b.ReportMetric(float64(improved)/13, "frac-queries-improved")
	}
}

func BenchmarkFig12(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(experiments.TPCHBench(s))
		if err != nil {
			b.Fatal(err)
		}
		var mtoQ5, baseQ5 float64
		for _, r := range rows {
			if r.Template == "q5" {
				switch r.Method {
				case experiments.MethodMTO:
					mtoQ5 = r.Blocks
				case experiments.MethodBaseline:
					baseQ5 = r.Blocks
				}
			}
		}
		if baseQ5 > 0 {
			b.ReportMetric(mtoQ5/baseQ5, "q5-mto-vs-baseline")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3([]*experiments.Bench{experiments.TPCHBench(s)})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == experiments.MethodMTO {
				b.ReportMetric(r.OptimizeSeconds, "mto-optimize-sec")
			}
		}
	}
}

func BenchmarkFig13a(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13a(experiments.TPCHBench(s), []float64{1, 0.25})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "MTO+CA" && r.SampleRate == 0.25 {
				b.ReportMetric(math.Abs(r.EstimatedBlocks-float64(r.MeasuredBlocks))/float64(r.MeasuredBlocks),
					"ca-estimate-error")
			}
		}
	}
}

func BenchmarkFig13b(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13b(experiments.TPCHBench(s), []float64{0.25})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == experiments.MethodMTO {
				b.ReportMetric(r.TotalSeconds, "mto-total-sec")
			}
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4([]*experiments.Bench{experiments.SSBBench(s)})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Versus == experiments.MethodBaseline && r.QueriesToCross > 0 {
				b.ReportMetric(float64(r.QueriesToCross), "queries-to-cross-baseline")
			}
		}
	}
}

func BenchmarkFig14a(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14a(s)
		if err != nil {
			b.Fatal(err)
		}
		var partial, noReorg float64
		for _, r := range rows {
			switch r.Scenario {
			case "MTO no reorg":
				noReorg = r.AvgQuerySeconds
			case "MTO partial reorg (q=500)":
				partial = r.AvgQuerySeconds
			}
		}
		if noReorg > 0 {
			b.ReportMetric(partial/noReorg, "partial-reorg-speedup")
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(s, []float64{200, math.Inf(1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].FracDataReorganized, "q200-frac-reorganized")
		b.ReportMetric(rows[0].FracSubtreesConsidered, "q200-frac-subtrees")
	}
}

func BenchmarkFig14b(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14b(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scenario == "MTO after insert" {
				b.ReportMetric(r.CutUpdateSeconds, "cut-update-sec")
			}
		}
	}
}

func BenchmarkFig15a(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15a(s, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == experiments.MethodMTO && r.PerTemplate == 4 {
				b.ReportMetric(r.VsBaselineNorm, "mto-norm-at-88q")
			}
		}
	}
}

func BenchmarkFig15b(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15b(s, []float64{0.005, 0.02})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == experiments.MethodMTO && r.SF == 0.02 {
				b.ReportMetric(r.VsBaselineNorm, "mto-norm-at-4x-data")
			}
		}
	}
}

// BenchmarkWorkloadReplay measures full-workload replay wall-clock on an
// already-deployed SSB layout at several parallelism levels, through the
// experiments harness (which builds a fresh engine — and hence cold
// dictionary/index caches — per replay). All parallelism levels must
// produce identical metrics. Since the vectorized kernels cut per-query
// cost by an order of magnitude, the serial cold-cache build dominates
// this harness-level number; BenchmarkExecuteWorkload isolates the
// execution paths themselves on a warm engine.
func BenchmarkWorkloadReplay(b *testing.B) {
	s := benchScale()
	s.SF = 0.02
	bench := experiments.SSBBench(s)
	d, err := experiments.DeployMethod(bench, experiments.MethodBaseline, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			bench.Parallel = par
			for i := 0; i < b.N; i++ {
				res, err := experiments.Replay(bench, d, true)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Blocks), "workload-blocks")
			}
		})
	}
}

// BenchmarkExecuteWorkload measures per-query execution itself — the inner
// loop that parallel replay multiplies — by replaying the SSB workload
// sequentially on an already-deployed layout through each execution path:
// the vectorized kernels behind Execute (bit-mask filters, dictionary-coded
// join keys, batch zone pruning) versus the retained scalar reference
// (per-row closures, boxed key sets rebuilt every reduction pass). The two
// produce byte-identical Results; only the wall-clock differs.
func BenchmarkExecuteWorkload(b *testing.B) {
	s := benchScale()
	s.SF = 0.02
	bench := experiments.SSBBench(s)
	d, err := experiments.DeployMethod(bench, experiments.MethodBaseline, true)
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(d.Store, d.Design, bench.Dataset, engine.CloudDWOptions())
	for _, mode := range []struct {
		name string
		ref  bool
	}{
		{"kernel", false},
		{"reference", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wr, err := engine.RunWorkload(eng, bench.Workload.Queries,
					engine.RunOptions{Parallelism: 1, Reference: mode.ref})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(wr.Blocks), "workload-blocks")
			}
		})
	}
}

// BenchmarkReplayDisk measures full-workload replay against the persistent
// columnar segment store in its interesting regimes — cold (0-byte buffer
// pool, every block read comes from disk) on both the default
// compressed-domain scan path and the full-decode path, and warm (pool
// large enough to hold the working set after a priming replay) — next to
// the in-memory backend the other benchmarks use. All configurations
// produce byte-identical Results; only the wall-clock differs, and the
// warm-cache run is expected to stay within ~2× of mem.
func BenchmarkReplayDisk(b *testing.B) {
	s := benchScale()
	s.SF = 0.02
	for _, cfg := range []struct {
		name       string
		store      string
		cacheMB    int
		prime      bool
		compressed string
	}{
		{name: "mem", store: "mem"},
		{name: "disk-cold", store: "disk", cacheMB: 0},
		{name: "disk-cold-decode", store: "disk", cacheMB: 0, compressed: "off"},
		{name: "disk-warm", store: "disk", cacheMB: 256, prime: true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			bench := experiments.SSBBench(s)
			bench.Store = cfg.store
			bench.CacheMB = cfg.cacheMB
			bench.Compressed = cfg.compressed
			if cfg.store == "disk" {
				bench.DataDir = b.TempDir()
			}
			d, err := experiments.DeployMethod(bench, experiments.MethodBaseline, true)
			if err != nil {
				b.Fatal(err)
			}
			if c, ok := d.Store.(io.Closer); ok {
				defer c.Close()
			}
			if cfg.prime {
				if _, err := experiments.Replay(bench, d, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := experiments.Replay(bench, d, true)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Blocks), "workload-blocks")
			}
		})
	}
}

// BenchmarkAblationRoaringVsSlice isolates the literal-cut representation
// choice (§4.1.2): membership probes against a roaring bitmap vs a plain
// sorted slice, at join-key cardinalities typical of induced cuts.
func BenchmarkAblationRoaringVsSlice(b *testing.B) {
	const n = 200000
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = uint32(i * 3)
	}
	bm := bitmap.FromSlice(keys)
	bm.Optimize()
	b.Run("roaring", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if bm.Contains(uint32(i % (3 * n))) {
				hits++
			}
		}
		_ = hits
		b.ReportMetric(float64(bm.SizeBytes()), "bytes")
	})
	b.Run("sorted-slice", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			v := uint32(i % (3 * n))
			lo, hi := 0, len(keys)
			for lo < hi {
				mid := (lo + hi) / 2
				if keys[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(keys) && keys[lo] == v {
				hits++
			}
		}
		_ = hits
		b.ReportMetric(float64(4*len(keys)), "bytes")
	})
}

// BenchmarkAblationUniqueRestriction measures the §4.1.1 policy's effect.
func BenchmarkAblationUniqueRestriction(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(experiments.SSBBench(s))
		if err != nil {
			b.Fatal(err)
		}
		var def, ablated float64
		for _, r := range rows {
			switch r.Variant {
			case "MTO (default)":
				def = float64(r.Blocks)
			case "no unique-source restriction":
				ablated = float64(r.Blocks)
			}
		}
		if def > 0 {
			b.ReportMetric(ablated/def, "ablated-vs-default-blocks")
		}
	}
}

// BenchmarkAblationReorgPruning measures §5.1.3's pruning payoff.
func BenchmarkAblationReorgPruning(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ReorgPruningAblation(s)
		if err != nil {
			b.Fatal(err)
		}
		if rows[1].FracSubtreesConsidered > 0 {
			b.ReportMetric(rows[0].FracSubtreesConsidered/rows[1].FracSubtreesConsidered,
				"pruned-vs-exhaustive-subtrees")
		}
	}
}
