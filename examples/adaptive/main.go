// Adaptive layout demo: optimize MTO for one TPC-H workload, shift to a
// disjoint set of templates, and let partial reorganization (§5.1 of the
// paper) win the performance back — rewriting only the qd-tree subtrees
// whose reward justifies the block rewrites.
//
//	go run ./examples/adaptive [-sf 0.01]
package main

import (
	"flag"
	"fmt"
	"log"

	"mto"
	"mto/internal/datagen"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	flag.Parse()

	fmt.Printf("generating TPC-H at SF %g...\n", *sf)
	ds := datagen.TPCH(datagen.TPCHConfig{ScaleFactor: *sf, Seed: 1})
	trained := datagen.TPCHWorkloadTemplates(1, 11, 4, 2)  // templates 1–11
	shifted := datagen.TPCHWorkloadTemplates(12, 22, 4, 3) // templates 12–22

	sys, err := mto.Open(ds, trained, mto.Config{
		BlockSize:     1000,
		SampleRate:    0.25,
		LeafOrderKeys: map[string]string(datagen.TPCHSortKeys()),
	})
	if err != nil {
		log.Fatal(err)
	}

	measure := func(label string) float64 {
		blocks := 0
		for _, q := range shifted.Queries {
			res, err := sys.Execute(q)
			if err != nil {
				log.Fatal(err)
			}
			blocks += res.BlocksRead
		}
		fmt.Printf("%-28s %6d blocks for the shifted workload\n", label, blocks)
		return float64(blocks)
	}

	before := measure("before reorganization:")

	// The reward horizon q controls how aggressively MTO reorganizes:
	// with q ≤ w (=100) nothing is worth rewriting; a large horizon
	// amortizes block rewrites over many future queries.
	for _, horizon := range []float64{100, 5000} {
		report, err := sys.Reorganize(shifted, mto.ReorgOptions{ExpectedQueries: horizon})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reorganize(q=%.0f): moved %.1f%% of records, rewrote %d blocks (plan %.2fs)\n",
			horizon, 100*report.FracDataReorganized, report.BlocksRewritten, report.PlanSeconds)
		if report.BlocksRewritten > 0 {
			after := measure(fmt.Sprintf("after reorg (q=%.0f):", horizon))
			fmt.Printf("improvement: %.1f%% fewer blocks\n", 100*(1-after/before))
		}
	}
}
