// SQL workload demo: describe the expected queries in plain SQL — joins,
// IN lists, BETWEEN, even NOT EXISTS subqueries — and let MTO learn a
// join-aware layout from them.
//
//	go run ./examples/sqlworkload
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mto"
)

func main() {
	ds := buildRetail()

	// The training workload, as SQL. Filters live on the dimension tables;
	// the NOT EXISTS query maps to an anti-semi join.
	w, err := mto.ParseSQLWorkload(ds,
		`SELECT SUM(f.amount) FROM customers c, facts f
		 WHERE c.cust_id = f.cust_id AND c.tier = 'gold'`,
		`SELECT COUNT(*) FROM customers c, facts f
		 WHERE c.cust_id = f.cust_id AND c.tier IN ('silver', 'bronze')`,
		`SELECT COUNT(*) FROM facts f, items i
		 WHERE i.item_id = f.item_id AND i.kind = 'perishable'
		   AND f.amount BETWEEN 100 AND 500`,
		`SELECT COUNT(*) FROM customers c
		 WHERE NOT EXISTS (SELECT 1 FROM facts f WHERE f.cust_id = c.cust_id)`,
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range w.Queries {
		fmt.Println("parsed:", q)
	}

	sys, err := mto.Open(ds, w, mto.Config{BlockSize: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlayout: %d cuts (%d join-induced), %d blocks\n",
		sys.Stats().TotalCuts, sys.Stats().InducedCuts, sys.TotalBlocks())

	for _, q := range w.Queries {
		res, err := sys.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s read %3d of %3d blocks (%.0f%% skipped)\n",
			q.ID, res.BlocksRead, res.TotalBlocks, 100*(1-res.FractionOfBlocks()))
	}
}

func buildRetail() *mto.Dataset {
	rng := rand.New(rand.NewSource(7))
	ds := mto.NewDataset()

	customers := mto.NewTable(mto.MustSchema("customers",
		mto.Column{Name: "cust_id", Type: mto.KindInt, Unique: true},
		mto.Column{Name: "tier", Type: mto.KindString},
	))
	tiers := []string{"gold", "silver", "bronze", "none"}
	for i := 0; i < 2000; i++ {
		customers.MustAppendRow(mto.Int(int64(i)), mto.String(tiers[rng.Intn(len(tiers))]))
	}
	items := mto.NewTable(mto.MustSchema("items",
		mto.Column{Name: "item_id", Type: mto.KindInt, Unique: true},
		mto.Column{Name: "kind", Type: mto.KindString},
	))
	kinds := []string{"perishable", "durable", "digital"}
	for i := 0; i < 1000; i++ {
		items.MustAppendRow(mto.Int(int64(i)), mto.String(kinds[rng.Intn(len(kinds))]))
	}
	facts := mto.NewTable(mto.MustSchema("facts",
		mto.Column{Name: "fact_id", Type: mto.KindInt, Unique: true},
		mto.Column{Name: "cust_id", Type: mto.KindInt},
		mto.Column{Name: "item_id", Type: mto.KindInt},
		mto.Column{Name: "amount", Type: mto.KindFloat},
	))
	for i := 0; i < 100000; i++ {
		facts.MustAppendRow(
			mto.Int(int64(i)),
			mto.Int(int64(rng.Intn(2000))),
			mto.Int(int64(rng.Intn(1000))),
			mto.Float(float64(rng.Intn(100000))/100),
		)
	}
	ds.MustAddTable(customers)
	ds.MustAddTable(items)
	ds.MustAddTable(facts)
	return ds
}
