// Dynamic data demo: learn a layout, then keep appending new facts. MTO
// routes the inserted records through the existing qd-trees and updates any
// join-induced cuts whose induction paths touch the changed table (§5.2 of
// the paper) — no reorganization needed.
//
//	go run ./examples/dynamicdata
package main

import (
	"fmt"
	"log"

	"mto"
)

func main() {
	// Stores dimension + a daily-growing events fact table.
	ds := mto.NewDataset()
	stores := mto.NewTable(mto.MustSchema("stores",
		mto.Column{Name: "store_id", Type: mto.KindInt, Unique: true},
		mto.Column{Name: "state", Type: mto.KindString},
	))
	states := []string{"CA", "NY", "TX", "WA", "IL"}
	for i := 0; i < 500; i++ {
		stores.MustAppendRow(mto.Int(int64(i)), mto.String(states[i%len(states)]))
	}
	ds.MustAddTable(stores)

	events := mto.NewTable(mto.MustSchema("events",
		mto.Column{Name: "event_id", Type: mto.KindInt, Unique: true},
		mto.Column{Name: "store_id", Type: mto.KindInt},
		mto.Column{Name: "ts", Type: mto.KindInt, Date: true},
	))
	day0 := mto.MustDate("2025-01-01").Int()
	nextID := 0
	appendDay := func(day int, rows int) []int {
		idxs := make([]int, 0, rows)
		for i := 0; i < rows; i++ {
			events.MustAppendRow(
				mto.Int(int64(nextID)),
				mto.Int(int64((nextID*31)%500)),
				mto.Int(day0+int64(day)),
			)
			idxs = append(idxs, events.NumRows()-1)
			nextID++
		}
		return idxs
	}
	for day := 0; day < 30; day++ {
		appendDay(day, 2000)
	}
	ds.MustAddTable(events)

	// Analysts filter by state (through the join) and by recency.
	w := mto.NewWorkload()
	for _, st := range states {
		q := mto.NewQuery("events-"+st,
			mto.TableRef{Table: "stores"},
			mto.TableRef{Table: "events"},
		)
		q.AddJoin("stores", "store_id", "events", "store_id")
		q.Filter("stores", mto.Compare("state", mto.Eq, mto.String(st)))
		w.Add(q)
	}

	sys, err := mto.Open(ds, w, mto.Config{
		BlockSize:     2000,
		LeafOrderKeys: map[string]string{"events": "ts"},
	})
	if err != nil {
		log.Fatal(err)
	}
	report := func(label string) {
		res, err := sys.Execute(w.Queries[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %2d of %2d blocks read, %d CA-event rows\n",
			label, res.BlocksRead, res.TotalBlocks, res.SurvivingRows["events"])
	}
	report("initial layout:")

	// A week of new data arrives, one day at a time.
	for day := 30; day < 37; day++ {
		rows := appendDay(day, 2000)
		ins, err := sys.Insert("events", rows)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d: routed %d rows into %d blocks (cut update %.4fs, %d cuts)\n",
			day, ins.RowsRouted, ins.BlocksWritten, ins.CutUpdateSeconds, ins.CutsUpdated)
	}
	report("after a week of data:")

	// New stores open, which DOES touch induction paths: the literal cuts
	// on events.store_id must absorb the new store ids.
	for i := 0; i < 5; i++ {
		stores.MustAppendRow(mto.Int(int64(500+i)), mto.String("CA"))
	}
	ins, err := sys.Insert("stores", []int{500, 501, 502, 503, 504})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new stores: %d join-induced cuts updated in %.4fs\n",
		ins.CutsUpdated, ins.CutUpdateSeconds)
	report("after new stores:")
}
