// Star Schema Benchmark demo: generate SSB, learn MTO and STO layouts, and
// compare their block skipping across the 13-query workload — the scenario
// where join-aware layout pays off most (§6.3.1 of the paper).
//
//	go run ./examples/starschema [-sf 0.01]
package main

import (
	"flag"
	"fmt"
	"log"

	"mto"
	"mto/internal/datagen"
)

func main() {
	sf := flag.Float64("sf", 0.01, "SSB scale factor")
	flag.Parse()

	fmt.Printf("generating SSB at SF %g...\n", *sf)
	ds := datagen.SSB(datagen.SSBConfig{ScaleFactor: *sf, Seed: 1})
	w := datagen.SSBWorkload(2)
	fmt.Printf("lineorder: %d rows; workload: %d queries\n",
		ds.Table("lineorder").NumRows(), w.Len())

	leafOrder := map[string]string(datagen.SSBSortKeys())
	configs := []struct {
		name string
		cfg  mto.Config
	}{
		{"STO (single-table qd-trees)", mto.Config{
			BlockSize: 1000, SampleRate: 0.25,
			DisableJoinInduction: true, LeafOrderKeys: leafOrder,
		}},
		{"MTO (join-induced cuts)", mto.Config{
			BlockSize: 1000, SampleRate: 0.25, LeafOrderKeys: leafOrder,
		}},
	}
	for _, c := range configs {
		sys, err := mto.Open(ds, w, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		total, blocks := 0, 0
		for _, q := range w.Queries {
			res, err := sys.Execute(q)
			if err != nil {
				log.Fatal(err)
			}
			blocks += res.BlocksRead
			total += res.TotalBlocks
		}
		st := sys.Stats()
		fmt.Printf("\n%s\n", c.name)
		fmt.Printf("  cuts: %d total, %d join-induced (max induction depth %d)\n",
			st.TotalCuts, st.InducedCuts, st.MaxDepth)
		fmt.Printf("  workload I/O: %d blocks read (%.1f%% of the %d touched)\n",
			blocks, 100*float64(blocks)/float64(total), total)
		fmt.Printf("  offline: optimize %.2fs, route %.2fs\n",
			sys.Timings().OptimizeSeconds, sys.Timings().RoutingSeconds)
	}
}
