// Quickstart: build a two-table star dataset, describe the query workload,
// learn an MTO layout, and watch join-aware block skipping at work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mto"
)

func main() {
	// 1. Build the dataset: a dimension table of 1,000 products and a
	// fact table of 200,000 sales referencing them.
	ds := mto.NewDataset()

	products := mto.NewTable(mto.MustSchema("products",
		mto.Column{Name: "product_id", Type: mto.KindInt, Unique: true},
		mto.Column{Name: "category", Type: mto.KindString},
		mto.Column{Name: "price", Type: mto.KindFloat},
	))
	categories := []string{"games", "books", "tools", "garden", "music"}
	for i := 0; i < 1000; i++ {
		products.MustAppendRow(
			mto.Int(int64(i)),
			mto.String(categories[i%len(categories)]),
			mto.Float(float64(i%500)+0.99),
		)
	}
	ds.MustAddTable(products)

	sales := mto.NewTable(mto.MustSchema("sales",
		mto.Column{Name: "sale_id", Type: mto.KindInt, Unique: true},
		mto.Column{Name: "product_id", Type: mto.KindInt},
		mto.Column{Name: "sale_date", Type: mto.KindInt, Date: true},
		mto.Column{Name: "quantity", Type: mto.KindInt},
	))
	day0 := mto.MustDate("2024-01-01").Int()
	for i := 0; i < 200000; i++ {
		sales.MustAppendRow(
			mto.Int(int64(i)),
			mto.Int(int64(i*7919%1000)), // uniform product references
			mto.Int(day0+int64(i%365)),
			mto.Int(int64(i%20+1)),
		)
	}
	ds.MustAddTable(sales)

	// 2. Describe the workload: analysts slice sales by product category.
	// Note that the filter is on the *dimension* table — a single-table
	// layout of `sales` cannot help these queries at all.
	w := mto.NewWorkload()
	for _, cat := range categories {
		q := mto.NewQuery("sales-by-"+cat,
			mto.TableRef{Table: "products"},
			mto.TableRef{Table: "sales"},
		)
		q.AddJoin("products", "product_id", "sales", "product_id")
		q.Filter("products", mto.Compare("category", mto.Eq, mto.String(cat)))
		w.Add(q)
	}

	// 3. Learn the layout. MTO pushes each category filter through the
	// join, producing join-induced cuts on sales.product_id.
	sys, err := mto.Open(ds, w, mto.Config{
		BlockSize:     5000,
		LeafOrderKeys: map[string]string{"sales": "sale_date"},
	})
	if err != nil {
		log.Fatal(err)
	}

	stats := sys.Stats()
	fmt.Printf("learned layout: %d cuts (%d join-induced), %d total blocks\n",
		stats.TotalCuts, stats.InducedCuts, sys.TotalBlocks())

	// 4. Execute the workload and observe block skipping.
	for _, q := range w.Queries {
		res, err := sys.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s read %2d of %2d blocks (%.0f%% skipped), %d joining sales rows\n",
			q.ID, res.BlocksRead, res.TotalBlocks,
			100*(1-res.FractionOfBlocks()), res.SurvivingRows["sales"])
	}

	// 5. Peek at the learned qd-tree for the fact table.
	dump, err := sys.TreeDump("sales")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nqd-tree for sales:")
	fmt.Print(dump)
}
